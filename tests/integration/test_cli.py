"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestTable1Command:
    def test_render(self):
        code, text = run_cli("table1")
        assert code == 0
        assert "Homogeneous platforms" in text
        assert "NP-hard (**)" in text


class TestSolveCommand:
    def test_pipeline_hom(self):
        code, text = run_cli(
            "solve", "--graph", "pipeline", "--works", "14,4,2,4",
            "--speeds", "1,1,1", "--objective", "period",
        )
        assert code == 0
        assert "period=8" in text

    def test_pipeline_dp_latency(self):
        code, text = run_cli(
            "solve", "--graph", "pipeline", "--works", "14,4,2,4",
            "--speeds", "1,1,1", "--data-parallel", "--objective", "latency",
        )
        assert code == 0
        assert "latency=17" in text

    def test_fork(self):
        code, text = run_cli(
            "solve", "--graph", "fork", "--root-work", "2",
            "--works", "5,5,5", "--speeds", "1,2,4", "--objective", "period",
        )
        assert code == 0
        assert "Thm 14" in text

    def test_forkjoin(self):
        code, text = run_cli(
            "solve", "--graph", "forkjoin", "--root-work", "2",
            "--works", "3,3", "--join-work", "4", "--speeds", "2,1",
            "--objective", "latency",
        )
        assert code == 0
        assert "solution" in text

    def test_np_hard_refusal(self):
        code, text = run_cli(
            "solve", "--graph", "pipeline", "--works", "9,2,7",
            "--speeds", "3,1", "--objective", "period",
        )
        assert code == 2
        assert "NP-hard" in text

    def test_np_hard_exact(self):
        code, text = run_cli(
            "solve", "--graph", "pipeline", "--works", "9,2,7",
            "--speeds", "3,1", "--objective", "period", "--exact",
        )
        assert code == 0
        assert "solution" in text

    def test_np_hard_heuristic(self):
        code, text = run_cli(
            "solve", "--graph", "pipeline", "--works", "9,2,7,3,5,1,8",
            "--speeds", "3,1,2,2", "--objective", "period", "--heuristic",
        )
        assert code == 0
        assert "portfolio" in text

    def test_bicriteria(self):
        code, text = run_cli(
            "solve", "--graph", "pipeline", "--works", "14,4,2,4",
            "--speeds", "1,1,1", "--data-parallel", "--objective", "latency",
            "--period-bound", "10",
        )
        assert code == 0
        assert "latency=17" in text

    def test_bad_numbers(self):
        with pytest.raises(SystemExit):
            run_cli("solve", "--graph", "pipeline", "--works", "a,b",
                    "--speeds", "1")

    def test_file_input(self, tmp_path):
        import json

        path = tmp_path / "instance.json"
        path.write_text(json.dumps({"kind": "pipeline", "works": [14, 4, 2, 4]}))
        code, text = run_cli(
            "solve", "--file", str(path), "--speeds", "1,1,1",
            "--objective", "period",
        )
        assert code == 0
        assert "period=8" in text

    def test_file_instance_document_needs_no_speeds(self, tmp_path):
        import json

        path = tmp_path / "instance.json"
        path.write_text(json.dumps({
            "kind": "instance",
            "application": {"kind": "pipeline", "works": [14, 4, 2, 4]},
            "platform": {"kind": "platform", "speeds": [1, 1, 1]},
            "allow_data_parallel": True,
        }))
        code, text = run_cli(
            "solve", "--file", str(path), "--objective", "latency",
        )
        assert code == 0
        assert "with data-parallelism" in text
        assert "latency=17" in text

    def test_file_mapping_document(self, tmp_path):
        import repro
        from repro.serialization import dumps as ser_dumps

        spec = repro.ProblemSpec(
            repro.PipelineApplication.from_works([14, 4, 2, 4]),
            repro.Platform.homogeneous(3, 1.0),
            allow_data_parallel=True,
        )
        sol = repro.solve(spec, repro.Objective.LATENCY)
        path = tmp_path / "mapping.json"
        path.write_text(ser_dumps(sol.mapping))
        code, text = run_cli(
            "solve", "--file", str(path), "--objective", "latency",
        )
        assert code == 0
        # data-parallel groups in the document imply the DP strategy
        assert "with data-parallelism" in text
        assert "latency=17" in text

    def test_file_speeds_flag_overrides_platform(self, tmp_path):
        import json

        path = tmp_path / "instance.json"
        path.write_text(json.dumps({
            "kind": "instance",
            "application": {"kind": "pipeline", "works": [14, 4, 2, 4]},
            "platform": {"kind": "platform", "speeds": [1, 1, 1]},
        }))
        code, text = run_cli(
            "solve", "--file", str(path), "--speeds", "2,2,2",
            "--objective", "period",
        )
        assert code == 0
        assert "period=4" in text

    def test_file_application_without_speeds_errors(self, tmp_path):
        import json

        path = tmp_path / "app.json"
        path.write_text(json.dumps({"kind": "pipeline", "works": [1, 2]}))
        code, text = run_cli("solve", "--file", str(path))
        assert code == 2
        assert "platform-bearing" in text

    def test_missing_works(self):
        code, text = run_cli("solve", "--speeds", "1,1")
        assert code == 2
        assert "provide --works or --file" in text


class TestScenarioCommand:
    def test_known(self):
        code, text = run_cli("scenario", "master-slave-fork",
                             "--objective", "period")
        assert code == 0
        assert "master-slave" in text

    def test_unknown(self):
        code, text = run_cli("scenario", "nope")
        assert code == 2
        assert "error" in text


class TestCampaignCommand:
    CAMPAIGN = {
        "kind": "campaign",
        "version": 1,
        "name": "cli-e2e",
        "instances": [
            {"type": "random", "graph": "pipeline", "count": 4, "seed": 5,
             "n": [3, 4], "p": 3},
        ],
        "objectives": ["period"],
        "solvers": [
            {"name": "exact", "mode": "auto", "exact_fallback": True},
            {"name": "random", "mode": "random", "seed": 2, "samples": 8},
        ],
    }

    def _write_spec(self, tmp_path):
        import json

        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(self.CAMPAIGN))
        return path

    def test_run_then_report_end_to_end(self, tmp_path):
        spec = self._write_spec(tmp_path)
        rows = tmp_path / "rows.jsonl"
        code, text = run_cli(
            "campaign", "run", "--spec", str(spec),
            "--workers", "2", "--cache-dir", str(tmp_path / "cache"),
            "--out", str(rows),
        )
        assert code == 0
        assert "8 tasks" in text and "8 ok" in text
        assert rows.exists()

        code, text = run_cli(
            "campaign", "report", "--results", str(rows),
            "--baseline", "exact",
        )
        assert code == 0
        assert "campaign 'cli-e2e'" in text
        assert "mean ratio" in text

    def test_second_run_hits_cache(self, tmp_path):
        spec = self._write_spec(tmp_path)
        cache = tmp_path / "cache"
        code, _ = run_cli(
            "campaign", "run", "--spec", str(spec),
            "--cache-dir", str(cache),
        )
        assert code == 0
        code, text = run_cli(
            "campaign", "run", "--spec", str(spec),
            "--cache-dir", str(cache),
        )
        assert code == 0
        assert "8 from cache" in text

    def test_report_shows_error_rows(self, tmp_path):
        import json

        doc = dict(self.CAMPAIGN)
        doc["instances"] = [
            {"type": "explicit", "id": "bad",
             "application": {"kind": "pipeline", "works": [-1.0]},
             "platform": {"kind": "platform", "speeds": [1.0]}},
        ]
        doc["solvers"] = [{"name": "auto"}]
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps(doc))
        rows = tmp_path / "rows.jsonl"
        code, text = run_cli(
            "campaign", "run", "--spec", str(spec), "--out", str(rows),
        )
        assert code == 0
        assert "1 errors" in text
        code, text = run_cli("campaign", "report", "--results", str(rows))
        assert code == 0
        assert "1 error rows" in text
        assert "InvalidApplicationError" in text

    def test_sqlite_backend_run_and_resume(self, tmp_path):
        spec = self._write_spec(tmp_path)
        cache = tmp_path / "cache"
        code, _ = run_cli(
            "campaign", "run", "--spec", str(spec),
            "--cache-dir", str(cache), "--cache-backend", "sqlite",
        )
        assert code == 0
        assert (cache / "cache.sqlite").exists()
        assert not list(cache.glob("*.jsonl"))
        code, text = run_cli(
            "campaign", "run", "--spec", str(spec),
            "--cache-dir", str(cache), "--cache-backend", "sqlite",
        )
        assert code == 0
        assert "8 from cache" in text

    def test_retry_errors_flag(self, tmp_path):
        import json

        doc = dict(self.CAMPAIGN)
        doc["instances"] = list(doc["instances"]) + [
            {"type": "explicit", "id": "poisoned",
             "application": {"kind": "pipeline", "works": [-1.0]},
             "platform": {"kind": "platform", "speeds": [1.0]}},
        ]
        doc["solvers"] = [
            {"name": "exact", "mode": "auto", "exact_fallback": True},
        ]
        spec = tmp_path / "campaign.json"
        spec.write_text(json.dumps(doc))
        cache = tmp_path / "cache"
        code, text = run_cli(
            "campaign", "run", "--spec", str(spec), "--cache-dir", str(cache),
        )
        assert code == 0
        assert "1 errors" in text
        code, text = run_cli(
            "campaign", "run", "--spec", str(spec), "--cache-dir", str(cache),
            "--retry-errors",
        )
        assert code == 0
        assert "1 retried" in text
        assert "4 from cache" in text

    def test_retry_errors_needs_cache_dir(self, tmp_path):
        spec = self._write_spec(tmp_path)
        code, text = run_cli(
            "campaign", "run", "--spec", str(spec), "--retry-errors",
        )
        assert code == 2
        assert "cache-dir" in text

    def test_bad_spec_file(self, tmp_path):
        import json

        path = tmp_path / "nope.json"
        path.write_text(json.dumps({"kind": "pipeline"}))
        code, text = run_cli("campaign", "run", "--spec", str(path))
        assert code == 2
        assert "error" in text

    def test_missing_spec_file_no_traceback(self, tmp_path):
        code, text = run_cli(
            "campaign", "run", "--spec", str(tmp_path / "absent.json")
        )
        assert code == 2
        assert text.startswith("error:")

    def test_malformed_json_no_traceback(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        code, text = run_cli("campaign", "run", "--spec", str(path))
        assert code == 2
        assert text.startswith("error:")
        code, text = run_cli("campaign", "report", "--results", str(path))
        assert code == 2
        assert text.startswith("error:")

    def test_missing_solve_file_no_traceback(self, tmp_path):
        code, text = run_cli(
            "solve", "--file", str(tmp_path / "absent.json"),
            "--speeds", "1,1",
        )
        assert code == 2
        assert text.startswith("error:")


class TestCampaignParetoCommand:
    def _instance_doc(self):
        return {
            "kind": "instance",
            "application": {"kind": "pipeline",
                            "works": [14.0, 4.0, 2.0, 4.0]},
            "platform": {"kind": "platform",
                         "speeds": [1.0, 1.0, 1.0, 1.0]},
            "allow_data_parallel": True,
        }

    def _parse_points(self, text, iid):
        points, collecting = [], False
        for line in text.splitlines():
            if line.startswith(f"front {iid!r}"):
                collecting = True
                continue
            if collecting:
                if not line.startswith("  period="):
                    break
                period, latency = line.split()
                points.append((float(period.split("=")[1]),
                               float(latency.split("=")[1])))
        return points

    def test_matches_analysis_pareto_front(self, tmp_path):
        import json

        import repro
        from repro.analysis import pareto_front

        doc = self._instance_doc()
        path = tmp_path / "inst.json"
        path.write_text(json.dumps(doc))
        code, text = run_cli(
            "campaign", "pareto", "--file", str(path), "--points", "8",
        )
        assert code == 0
        assert "'inst'" in text  # comparison table row, named by file stem

        spec = repro.ProblemSpec(
            repro.PipelineApplication.from_works(doc["application"]["works"]),
            repro.Platform.heterogeneous(doc["platform"]["speeds"]),
            allow_data_parallel=True,
        )
        expected = [(s.period, s.latency)
                    for s in pareto_front(spec, num_points=8)]
        assert self._parse_points(text, "inst") == expected

    def test_scenario_and_shared_cache(self, tmp_path):
        cache = tmp_path / "cache"
        code, text = run_cli(
            "campaign", "pareto", "--scenario", "image-pipeline",
            "--points", "5", "--exact", "--cache-dir", str(cache),
        )
        assert code == 0
        first = self._parse_points(text, "image-pipeline")
        assert first
        code, text = run_cli(
            "campaign", "pareto", "--scenario", "image-pipeline",
            "--points", "5", "--exact", "--cache-dir", str(cache),
        )
        assert code == 0
        assert self._parse_points(text, "image-pipeline") == first

    def test_mapping_document_infers_data_parallel(self, tmp_path):
        # a mapping doc carries no allow_data_parallel field: like
        # `solve --file`, data-parallel groups must imply the strategy
        import repro
        from repro.analysis import pareto_front
        from repro.serialization import dumps as ser_dumps

        spec = repro.ProblemSpec(
            repro.PipelineApplication.from_works([14, 4, 2, 4]),
            repro.Platform.homogeneous(4, 1.0),
            allow_data_parallel=True,
        )
        sol = repro.solve(spec, repro.Objective.LATENCY)
        assert any(g.kind.name == "DATA_PARALLEL"
                   for g in sol.mapping.groups)
        path = tmp_path / "mapping.json"
        path.write_text(ser_dumps(sol.mapping))
        code, text = run_cli(
            "campaign", "pareto", "--file", str(path), "--points", "6",
        )
        assert code == 0
        expected = [(s.period, s.latency)
                    for s in pareto_front(spec, num_points=6)]
        assert self._parse_points(text, "mapping") == expected

    def test_out_artifact_round_trips_printed_points(self, tmp_path):
        import json

        from repro.campaign import load_pareto_fronts

        doc = self._instance_doc()
        path = tmp_path / "inst.json"
        path.write_text(json.dumps(doc))
        out_path = tmp_path / "fronts.json"
        code, text = run_cli(
            "campaign", "pareto", "--file", str(path), "--points", "8",
            "--out", str(out_path),
        )
        assert code == 0
        assert f"[fronts -> {out_path}]" in text
        artifact = load_pareto_fronts(out_path)
        assert artifact["num_points"] == 8
        # the artifact carries exactly the printed points (the printed
        # reprs round-trip to the stored full-precision floats)
        assert [(p["period"], p["latency"])
                for p in artifact["fronts"]["inst"]] == \
            self._parse_points(text, "inst")
        assert all(p["mapping"]["kind"] == "mapping"
                   for p in artifact["fronts"]["inst"])

    def test_needs_an_instance(self):
        code, text = run_cli("campaign", "pareto")
        assert code == 2
        assert "at least one" in text

    def test_rejects_platformless_document(self, tmp_path):
        import json

        path = tmp_path / "app.json"
        path.write_text(json.dumps({"kind": "pipeline",
                                    "works": [1.0, 2.0]}))
        code, text = run_cli("campaign", "pareto", "--file", str(path))
        assert code == 2
        assert "instance" in text


class TestCampaignCacheCommand:
    def _populate(self, tmp_path, backend):
        from repro.campaign import ResultCache

        cache = ResultCache(tmp_path / "cache", backend=backend)
        key = "aa" + "0" * 62
        cache.put(key, {"status": "ok", "value": 1.0,
                        "mapping": {"pad": "x" * 100}})
        for i in range(10):  # superseded re-puts
            cache.put(key, {"status": "ok", "value": float(i),
                            "mapping": {"pad": "x" * 100}})
        cache.close()
        return tmp_path / "cache"

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_stats_then_compact(self, tmp_path, backend):
        cache_dir = self._populate(tmp_path, backend)
        code, text = run_cli(
            "campaign", "cache", "stats", "--cache-dir", str(cache_dir),
            "--cache-backend", backend,
        )
        assert code == 0
        assert f"[{backend}]" in text
        assert "keys          : 1" in text
        if backend == "jsonl":
            assert "stale records : 10" in text

        code, text = run_cli(
            "campaign", "cache", "compact", "--cache-dir", str(cache_dir),
            "--cache-backend", backend,
        )
        assert code == 0
        assert "compacted" in text
        if backend == "jsonl":
            assert "10 superseded records dropped" in text

        code, text = run_cli(
            "campaign", "cache", "stats", "--cache-dir", str(cache_dir),
            "--cache-backend", backend,
        )
        assert code == 0
        assert "stale records : 0" in text

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_compact_eviction_flags(self, tmp_path, backend):
        cache_dir = self._populate(tmp_path, backend)
        # generous budget: nothing evicted
        code, text = run_cli(
            "campaign", "cache", "compact", "--cache-dir", str(cache_dir),
            "--cache-backend", backend, "--max-bytes", "10000000",
        )
        assert code == 0
        assert "0 evicted by policy" in text
        # zero-day horizon: the single live record is evicted
        code, text = run_cli(
            "campaign", "cache", "compact", "--cache-dir", str(cache_dir),
            "--cache-backend", backend, "--max-age-days", "0",
        )
        assert code == 0
        assert "1 evicted by policy" in text
        code, text = run_cli(
            "campaign", "cache", "stats", "--cache-dir", str(cache_dir),
            "--cache-backend", backend,
        )
        assert code == 0
        assert "keys          : 0" in text

    def test_needs_a_location(self):
        code, text = run_cli("campaign", "cache", "stats")
        assert code == 2
        assert "cache-dir" in text

    def test_http_backend_needs_url(self, tmp_path):
        code, text = run_cli(
            "campaign", "cache", "stats",
            "--cache-backend", "http",
        )
        assert code == 2
        assert "--cache-url" in text

    def test_cache_url_rejected_without_http_backend(self, tmp_path):
        code, text = run_cli(
            "campaign", "cache", "stats", "--cache-dir", str(tmp_path),
            "--cache-url", "http://127.0.0.1:1",
        )
        assert code == 2
        assert "--cache-backend http" in text

    def test_cache_dir_rejected_with_http_backend(self, tmp_path):
        # an ignored --cache-dir would let `compact --max-age-days 0`
        # silently empty the *remote* cache the operator didn't target
        code, text = run_cli(
            "campaign", "cache", "compact", "--cache-dir", str(tmp_path),
            "--cache-backend", "http", "--cache-url", "http://127.0.0.1:1",
            "--max-age-days", "0",
        )
        assert code == 2
        assert "does not apply" in text


class TestSimulateCommand:
    def test_pipeline(self):
        # homogeneous pipeline -> the polynomial Theorem 7 route
        code, text = run_cli(
            "simulate", "--graph", "pipeline", "--works", "6,6,6",
            "--speeds", "2,1", "--objective", "period", "--data-sets", "200",
        )
        assert code == 0
        assert "measured period" in text
        assert "order inversions" in text

    def test_np_hard_instance_with_exact(self):
        code, text = run_cli(
            "simulate", "--graph", "pipeline", "--works", "6,2,8",
            "--speeds", "2,1", "--objective", "period", "--exact",
            "--data-sets", "200",
        )
        assert code == 0
        assert "measured period" in text
