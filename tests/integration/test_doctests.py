"""Tier-1 doctest gate for the documented public entry points.

The docstring examples on :func:`repro.analysis.pareto.pareto_front`,
:func:`threshold_grid`, :func:`non_dominated`,
:class:`repro.campaign.cache.ResultCache` and
:class:`repro.service.client.ServiceClient` are executable — this test
runs them inside the plain tier-1 invocation, and CI additionally runs
``pytest --doctest-modules`` on the same modules, so a drifting example
fails the build instead of rotting in the docs.
"""

from __future__ import annotations

import doctest

import pytest

import repro.analysis.pareto
import repro.campaign.cache
import repro.service.client

DOCUMENTED_MODULES = [
    repro.analysis.pareto,
    repro.campaign.cache,
    repro.service.client,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda m: m.__name__
)
def test_module_doctests_pass(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, (
        f"{module.__name__} lost its doctest examples"
    )
    assert result.failed == 0, (
        f"{result.failed} doctest failure(s) in {module.__name__}"
    )
