"""Property-based tests (hypothesis) on the core invariants of the model.

These encode the structural facts the paper's proofs lean on; each property
is tested on arbitrary generated instances and mappings.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.algorithms import brute_force as bf
from repro.algorithms.lemmas import (
    strip_data_parallelism_hom,
    strip_replication_for_latency,
)
from repro.algorithms.problem import Objective, ProblemSpec
from repro.chains import chains_to_chains_dp, chains_to_chains_probe
from repro.core import evaluate
from repro.heuristics import random_fork_mapping, random_pipeline_mapping

works_lists = st.lists(
    st.integers(min_value=1, max_value=20), min_size=1, max_size=5
)
speeds_lists = st.lists(
    st.integers(min_value=1, max_value=5), min_size=1, max_size=5
)
seeds = st.integers(min_value=0, max_value=10_000)


def _pipeline_instance(works, speeds, seed, dp):
    app = repro.PipelineApplication.from_works([float(w) for w in works])
    plat = repro.Platform.heterogeneous([float(s) for s in speeds])
    sol = random_pipeline_mapping(app, plat, random.Random(seed), dp)
    return app, plat, sol


@settings(max_examples=60, deadline=None)
@given(works=works_lists, speeds=speeds_lists, seed=seeds)
def test_period_never_below_capacity_bound(works, speeds, seed):
    """No mapping beats total work over aggregate speed (paper Thm 1 bound)."""
    _, plat, sol = _pipeline_instance(works, speeds, seed, dp=True)
    assert sol.period >= sum(works) / plat.total_speed - 1e-9


@settings(max_examples=60, deadline=None)
@given(works=works_lists, speeds=speeds_lists, seed=seeds)
def test_latency_never_below_fastest_processor_without_dp(works, speeds, seed):
    """Without data-parallelism, latency >= total work / fastest speed
    (the Theorem 6 optimum is a lower bound on every no-dp mapping)."""
    _, plat, sol = _pipeline_instance(works, speeds, seed, dp=False)
    assert sol.latency >= sum(works) / max(speeds) - 1e-9


@settings(max_examples=60, deadline=None)
@given(works=works_lists, speeds=speeds_lists, seed=seeds)
def test_latency_never_below_aggregate_capacity(works, speeds, seed):
    """With data-parallelism, each stage's delay >= w_i / (sum of all
    speeds), so the latency >= total work / aggregate speed."""
    _, plat, sol = _pipeline_instance(works, speeds, seed, dp=True)
    assert sol.latency >= sum(works) / plat.total_speed - 1e-9


@settings(max_examples=60, deadline=None)
@given(works=works_lists, speeds=speeds_lists, seed=seeds)
def test_period_at_most_latency_groupwise(works, speeds, seed):
    """Each group's period <= its delay, hence T_period <= T_latency for
    pipelines (delays sum, periods max)."""
    _, _, sol = _pipeline_instance(works, speeds, seed, dp=True)
    assert sol.period <= sol.latency + 1e-9


@settings(max_examples=40, deadline=None)
@given(works=works_lists, seed=seeds, p=st.integers(1, 4))
def test_lemma1_strip_dp_preserves_period_hom(works, seed, p):
    app = repro.PipelineApplication.from_works([float(w) for w in works])
    plat = repro.Platform.homogeneous(p, 2.0)
    sol = random_pipeline_mapping(app, plat, random.Random(seed), True)
    period, _ = evaluate(strip_data_parallelism_hom(sol.mapping))
    assert abs(period - sol.period) <= 1e-9 * max(1.0, sol.period)


@settings(max_examples=40, deadline=None)
@given(works=works_lists, speeds=speeds_lists, seed=seeds)
def test_lemma2_strip_replication_preserves_latency(works, speeds, seed):
    app = repro.ForkApplication.from_works(
        float(works[0]), [float(w) for w in works]
    )
    plat = repro.Platform.heterogeneous([float(s) for s in speeds])
    sol = random_fork_mapping(app, plat, random.Random(seed), False)
    _, latency = evaluate(strip_replication_for_latency(sol.mapping))
    assert abs(latency - sol.latency) <= 1e-9 * max(1.0, sol.latency)


@settings(max_examples=40, deadline=None)
@given(works=works_lists, p=st.integers(1, 5))
def test_chains_to_chains_dp_probe_agree(works, p):
    a = chains_to_chains_dp([float(w) for w in works], p).bottleneck
    b = chains_to_chains_probe([float(w) for w in works], p).bottleneck
    assert abs(a - b) <= 1e-9 * max(1.0, a)


@settings(max_examples=40, deadline=None)
@given(works=works_lists, p=st.integers(1, 5))
def test_chains_bottleneck_bounds(works, p):
    result = chains_to_chains_dp([float(w) for w in works], p)
    assert result.bottleneck >= max(works) - 1e-9
    assert result.bottleneck <= sum(works) + 1e-9
    # more processors never hurt
    more = chains_to_chains_dp([float(w) for w in works], p + 1)
    assert more.bottleneck <= result.bottleneck + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    works=st.lists(st.integers(1, 9), min_size=1, max_size=4),
    speeds=st.lists(st.integers(1, 4), min_size=1, max_size=4),
)
def test_dp_option_never_hurts_optimum(works, speeds):
    """Allowing data-parallelism can only improve (or keep) both optima —
    the search space strictly contains the no-dp one."""
    app = repro.PipelineApplication.from_works([float(w) for w in works])
    plat = repro.Platform.heterogeneous([float(s) for s in speeds])
    for objective in (Objective.PERIOD, Objective.LATENCY):
        no_dp = bf.optimal(ProblemSpec(app, plat, False), objective)
        with_dp = bf.optimal(ProblemSpec(app, plat, True), objective)
        assert with_dp.objective_value(objective) <= (
            no_dp.objective_value(objective) + 1e-9
        )


@settings(max_examples=25, deadline=None)
@given(
    works=st.lists(st.integers(1, 9), min_size=1, max_size=4),
    speeds=st.lists(st.integers(1, 4), min_size=2, max_size=4),
)
def test_more_processors_never_hurt(works, speeds):
    """Dropping a processor cannot improve the brute-force optimum."""
    app = repro.PipelineApplication.from_works([float(w) for w in works])
    full = repro.Platform.heterogeneous([float(s) for s in speeds])
    reduced = repro.Platform.heterogeneous([float(s) for s in speeds[:-1]])
    for objective in (Objective.PERIOD, Objective.LATENCY):
        big = bf.optimal(ProblemSpec(app, full, False), objective)
        small = bf.optimal(ProblemSpec(app, reduced, False), objective)
        assert big.objective_value(objective) <= (
            small.objective_value(objective) + 1e-9
        )


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 4),
    w=st.integers(1, 5),
    speeds=st.lists(st.integers(1, 4), min_size=1, max_size=4),
)
def test_thm7_matches_brute_force_property(n, w, speeds):
    app = repro.PipelineApplication.homogeneous(n, float(w))
    plat = repro.Platform.heterogeneous([float(s) for s in speeds])
    spec = ProblemSpec(app, plat, False)
    got = repro.solve(spec, Objective.PERIOD).period
    want = bf.optimal(spec, Objective.PERIOD).period
    assert abs(got - want) <= 1e-9 * max(1.0, want)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 3),
    w0=st.integers(1, 6),
    w=st.integers(1, 4),
    speeds=st.lists(st.integers(1, 4), min_size=1, max_size=3),
)
def test_thm14_matches_brute_force_property(n, w0, w, speeds):
    app = repro.ForkApplication.homogeneous(n, float(w0), float(w))
    plat = repro.Platform.heterogeneous([float(s) for s in speeds])
    spec = ProblemSpec(app, plat, False)
    for objective in (Objective.PERIOD, Objective.LATENCY):
        got = repro.solve(spec, objective).objective_value(objective)
        want = bf.optimal(spec, objective).objective_value(objective)
        assert abs(got - want) <= 1e-9 * max(1.0, want)
