"""Span tracing: JSON-lines emission, span context manager, null tracer."""

import json
import threading

from repro.obs import NULL_TRACER, Tracer, new_trace_id, read_spans


class TestTracer:
    def test_emit_writes_one_json_line(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with Tracer(path) as tracer:
            tracer.emit("solve", 0.25, trace="abc", engine="bnb",
                        skipped=None)
        spans = read_spans(path)
        assert len(spans) == 1
        span = spans[0]
        assert span["span"] == "solve"
        assert span["seconds"] == 0.25
        assert span["trace"] == "abc"
        assert span["engine"] == "bnb"
        assert "skipped" not in span          # None fields are dropped
        assert span["ts"] > 0

    def test_span_context_manager_records_ok_flag(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with Tracer(path) as tracer:
            with tracer.span("work", trace="t1") as sp:
                sp["items"] = 3
            try:
                with tracer.span("boom", trace="t1"):
                    raise ValueError("nope")
            except ValueError:
                pass
        ok, boom = read_spans(path)
        assert ok["span"] == "work" and ok["ok"] is True
        assert ok["items"] == 3
        assert boom["span"] == "boom" and boom["ok"] is False

    def test_append_mode_across_tracers(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with Tracer(path) as tracer:
            tracer.emit("a", 0.1)
        with Tracer(path) as tracer:
            tracer.emit("b", 0.2)
        assert [s["span"] for s in read_spans(path)] == ["a", "b"]

    def test_emit_after_close_is_silent(self, tmp_path):
        tracer = Tracer(tmp_path / "spans.jsonl")
        tracer.close()
        tracer.emit("late", 0.1)              # no raise, no write
        assert read_spans(tmp_path / "spans.jsonl") == []

    def test_concurrent_emission_keeps_lines_whole(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with Tracer(path) as tracer:
            threads = [
                threading.Thread(target=lambda i=i: [
                    tracer.emit("spin", 0.001, worker=i) for _ in range(50)
                ])
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # every line must parse — interleaved torn writes would not
        spans = read_spans(path)
        assert len(spans) == 400
        assert all(s["span"] == "spin" for s in spans)

    def test_lines_are_compact_json(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with Tracer(path) as tracer:
            tracer.emit("x", 0.1)
        raw = path.read_text().strip()
        assert json.loads(raw)
        assert ": " not in raw and ", " not in raw


class TestNullTracer:
    def test_absorbs_everything(self):
        assert NULL_TRACER.active is False
        NULL_TRACER.emit("x", 1.0, trace="t")
        with NULL_TRACER.span("y", trace="t") as sp:
            sp["ignored"] = 1
        NULL_TRACER.close()

    def test_new_trace_ids_are_distinct_hex(self):
        a, b = new_trace_id(), new_trace_id()
        assert a != b
        assert len(a) == 16
        int(a, 16)
