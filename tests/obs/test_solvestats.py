"""SolveStats: the per-solve timing/effort record behind ``timing``."""

import repro
from repro.algorithms import brute_force as bf
from repro.algorithms.problem import Objective, ProblemSpec
from repro.obs import SolveStats


def _spec():
    return ProblemSpec(
        repro.PipelineApplication.from_works([3, 5, 2]),
        repro.Platform.heterogeneous([2, 1]),
        False,
    )


class TestToDict:
    def test_fixed_keys(self):
        doc = SolveStats(seconds=0.5).to_dict()
        assert list(doc) == [
            "seconds", "engine", "status", "objective", "nodes", "pruned",
            "memo_hits", "budget_reason", "graph", "n", "p",
        ]
        assert doc["seconds"] == 0.5
        assert doc["status"] == "completed"

    def test_json_ready(self):
        import json

        doc = SolveStats(seconds=0.1, engine="bnb", nodes=7,
                         graph="pipeline", n=3, p=2).to_dict()
        assert json.loads(json.dumps(doc)) == doc


class TestFromSolution:
    def test_maps_meta_and_instance_shape(self):
        spec = _spec()
        solution = bf.optimal(spec, Objective.PERIOD, engine="bnb")
        stats = SolveStats.from_solution(
            solution, spec=spec, seconds=0.25, objective="period"
        )
        assert stats.engine == "bnb"
        assert stats.status == "completed"     # "optimal" normalized
        assert stats.seconds == 0.25
        assert stats.objective == "period"
        assert stats.nodes == solution.meta["nodes"]
        assert stats.pruned == solution.meta["pruned"]
        assert stats.memo_hits == solution.meta["memo_hits"]
        assert stats.graph == "pipeline"
        assert (stats.n, stats.p) == (3, 2)

    def test_budget_exhausted_status_passes_through(self):
        from repro.algorithms.budget import Budget

        spec = ProblemSpec(
            repro.PipelineApplication.from_works(list(range(1, 13))),
            repro.Platform.heterogeneous([2, 1, 3, 1, 2, 1, 2, 1]),
            False,
        )
        solution = bf.optimal(spec, Objective.PERIOD,
                              budget=Budget(max_nodes=64))
        stats = SolveStats.from_solution(solution, spec=spec, seconds=1.0)
        assert stats.status == "budget_exhausted"
        assert stats.budget_reason == "max_nodes"

    def test_without_spec_shape_is_none(self):
        solution = bf.optimal(_spec(), Objective.PERIOD, engine="enumerate")
        stats = SolveStats.from_solution(solution, seconds=0.0)
        assert stats.engine == "brute-force"
        assert stats.graph is None and stats.n is None and stats.p is None
