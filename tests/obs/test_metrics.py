"""Metrics registry: counters, gauges, histograms, text exposition."""

import threading

import pytest

from repro.core import ReproError
from repro.obs import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "Jobs.")
        c.inc()
        c.inc(2.0)
        assert c.value() == 3.0

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("jobs_total", "Jobs.")
        with pytest.raises(ReproError):
            c.inc(-1.0)

    def test_labeled_children_are_memoized(self):
        c = MetricsRegistry().counter("jobs_total", "Jobs.", ("status",))
        c.labels(status="ok").inc()
        c.labels(status="ok").inc()
        c.labels(status="error").inc()
        assert c.value(status="ok") == 2.0
        assert c.value(status="error") == 1.0

    def test_wrong_label_names_rejected(self):
        c = MetricsRegistry().counter("jobs_total", "Jobs.", ("status",))
        with pytest.raises(ReproError):
            c.labels(state="ok")

    def test_set_to_mirrors_external_count(self):
        c = MetricsRegistry().counter("jobs_total", "Jobs.")
        c.set_to(41)
        assert c.value() == 41.0

    def test_concurrent_increments_all_land(self):
        # 8 threads x 1000 increments: the family lock must make the
        # total exact, not approximately 8000
        c = MetricsRegistry().counter("jobs_total", "Jobs.", ("worker",))

        def spin(worker):
            child = c.labels(worker=worker % 2)
            for _ in range(1000):
                child.inc()

        threads = [
            threading.Thread(target=spin, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(worker=0) + c.value(worker=1) == 8000.0


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("inflight", "In flight.")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4.0


class TestHistogram:
    def test_bucket_boundaries_are_inclusive(self):
        # le= is <=: a value exactly on a bound lands in that bucket
        h = MetricsRegistry().histogram(
            "lat", "Latency.", buckets=(0.1, 1.0, 10.0)
        )
        h.observe(0.1)
        h.observe(0.5)
        h.observe(10.0)
        h.observe(99.0)    # +Inf only
        child = h.child()
        assert child.counts == [1, 1, 1]   # per-bucket, non-cumulative
        assert child.count == 4
        assert child.sum == pytest.approx(109.6)

    def test_cumulative_render(self):
        h = MetricsRegistry().histogram(
            "lat", "Latency.", buckets=(1.0, 2.0)
        )
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        text = h.render()
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 101" in text
        assert "lat_count 3" in text

    def test_default_latency_buckets(self):
        h = MetricsRegistry().histogram("lat", "Latency.")
        assert h.buckets == LATENCY_BUCKETS
        assert h.buckets[0] == 0.0005 and h.buckets[-1] == 60.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ReproError):
            MetricsRegistry().histogram("lat", "L.", buckets=(2.0, 1.0))


class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs_total", "Jobs.", ("status",))
        b = reg.counter("jobs_total", "Jobs.", ("status",))
        assert a is b

    def test_conflicting_redeclaration_raises(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "Jobs.")
        with pytest.raises(ReproError):
            reg.gauge("jobs_total", "Jobs.")
        with pytest.raises(ReproError):
            reg.counter("jobs_total", "Jobs.", ("status",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ReproError):
            reg.counter("bad-name", "Nope.")
        with pytest.raises(ReproError):
            reg.counter("ok_name", "Nope.", ("bad-label",))

    def test_exposition_golden(self):
        # the full text format, families sorted by name, samples by label
        reg = MetricsRegistry()
        c = reg.counter("repro_solves_total", "Solves.",
                        ("engine", "status"))
        c.labels(engine="bnb", status="completed").inc(3)
        c.labels(engine="brute-force", status="completed").inc()
        g = reg.gauge("repro_inflight_solves", "In flight.")
        g.set(2)
        h = reg.histogram("repro_solve_seconds", "Seconds.",
                          buckets=(0.01, 1.0))
        h.observe(0.005)
        assert reg.render() == (
            "# HELP repro_inflight_solves In flight.\n"
            "# TYPE repro_inflight_solves gauge\n"
            "repro_inflight_solves 2\n"
            "# HELP repro_solve_seconds Seconds.\n"
            "# TYPE repro_solve_seconds histogram\n"
            'repro_solve_seconds_bucket{le="0.01"} 1\n'
            'repro_solve_seconds_bucket{le="1"} 1\n'
            'repro_solve_seconds_bucket{le="+Inf"} 1\n'
            "repro_solve_seconds_sum 0.005\n"
            "repro_solve_seconds_count 1\n"
            "# HELP repro_solves_total Solves.\n"
            "# TYPE repro_solves_total counter\n"
            'repro_solves_total{engine="bnb",status="completed"} 3\n'
            'repro_solves_total{engine="brute-force",status="completed"} 1\n'
        )

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "X.", ("why",))
        c.labels(why='a "quoted\\path"\nnewline').inc()
        assert (
            'x_total{why="a \\"quoted\\\\path\\"\\nnewline"} 1'
            in reg.render()
        )

    def test_null_registry_absorbs_everything(self):
        c = NULL_REGISTRY.counter("x_total", "X.", ("a",))
        c.inc()
        c.labels(a=1).inc(5)
        NULL_REGISTRY.gauge("g", "G.").set(3)
        NULL_REGISTRY.histogram("h", "H.").observe(1.0)
        assert NULL_REGISTRY.render() == ""
