"""Unit tests for the simplified cost model (Section 3.4 formulas).

Includes every number of the Section 2 worked example — the paper's own
micro-evaluation of the model.
"""

import pytest

from repro.core import (
    AssignmentKind,
    ForkApplication,
    ForkJoinApplication,
    PipelineApplication,
    Platform,
    ReproError,
    evaluate,
    fork_latency,
    fork_period,
    forkjoin_latency,
    forkjoin_period,
    group_delay,
    group_period,
    pipeline_latency,
    pipeline_period,
)
from tests.conftest import SECTION2_WORKS, fork_mapping, pipeline_mapping

R = AssignmentKind.REPLICATED
D = AssignmentKind.DATA_PARALLEL


class TestGroupFormulas:
    def test_replicated_period(self):
        # W / (k * min s)
        assert group_period(24.0, [1.0, 2.0], R) == pytest.approx(12.0)

    def test_replicated_delay_is_slowest(self):
        assert group_delay(24.0, [1.0, 2.0], R) == pytest.approx(24.0)

    def test_data_parallel_period_equals_delay(self):
        assert group_period(14.0, [2.0, 2.0, 1.0], D) == pytest.approx(2.8)
        assert group_delay(14.0, [2.0, 2.0, 1.0], D) == pytest.approx(2.8)

    def test_single_processor_equivalence(self):
        # k = 1: replication and data-parallelism coincide
        assert group_period(10.0, [4.0], R) == group_period(10.0, [4.0], D)
        assert group_delay(10.0, [4.0], R) == group_delay(10.0, [4.0], D)


class TestSection2Homogeneous:
    """The homogeneous-platform part of the worked example (p=3, s=1)."""

    def setup_method(self):
        self.app = PipelineApplication.from_works(SECTION2_WORKS)
        self.plat = Platform.homogeneous(3, 1.0)

    def test_best_no_replication_period_14(self):
        m = pipeline_mapping(self.app, self.plat, [([1], [0]), ([2, 3, 4], [1])])
        assert pipeline_period(m) == pytest.approx(14.0)
        assert pipeline_latency(m) == pytest.approx(24.0)

    def test_latency_always_24_on_identical_processors(self):
        for parts in (
            [([1, 2, 3, 4], [0])],
            [([1], [0]), ([2], [1]), ([3, 4], [2])],
        ):
            m = pipeline_mapping(self.app, self.plat, parts)
            assert pipeline_latency(m) == pytest.approx(24.0)

    def test_replicate_all_period_8(self):
        m = pipeline_mapping(self.app, self.plat, [([1, 2, 3, 4], [0, 1, 2])])
        assert pipeline_period(m) == pytest.approx(8.0)
        assert pipeline_latency(m) == pytest.approx(24.0)

    def test_replicate_first_stage_period_10(self):
        m = pipeline_mapping(
            self.app, self.plat, [([1], [0, 1]), ([2, 3, 4], [2])]
        )
        assert pipeline_period(m) == pytest.approx(10.0)
        assert pipeline_latency(m) == pytest.approx(24.0)

    def test_four_processors_period_7(self):
        plat4 = Platform.homogeneous(4, 1.0)
        m = pipeline_mapping(
            self.app, plat4, [([1], [0, 1]), ([2, 3, 4], [2, 3])]
        )
        assert pipeline_period(m) == pytest.approx(7.0)

    def test_data_parallel_s1_latency_17(self):
        m = pipeline_mapping(
            self.app, self.plat,
            [([1], [0, 1]), ([2, 3, 4], [2])],
            kinds=[D, R],
        )
        assert pipeline_latency(m) == pytest.approx(17.0)
        assert pipeline_period(m) == pytest.approx(10.0)


class TestSection2Heterogeneous:
    """The heterogeneous part: speeds (2, 2, 1, 1).

    The paper exhibits three mappings; we check each priced value.  (Note:
    the paper *claims* 5 and 12.8 are optimal; exhaustive search under the
    paper's own model finds 4.5 and 8.5 — see EXPERIMENTS.md erratum; the
    exhibited mappings themselves price exactly as printed, as tested
    here.)
    """

    def setup_method(self):
        self.app = PipelineApplication.from_works(SECTION2_WORKS)
        self.plat = Platform.heterogeneous([2.0, 2.0, 1.0, 1.0])

    def test_replicate_all_period_6(self):
        m = pipeline_mapping(self.app, self.plat, [([1, 2, 3, 4], [0, 1, 2, 3])])
        assert pipeline_period(m) == pytest.approx(6.0)
        assert pipeline_latency(m) == pytest.approx(24.0)

    def test_dp_s1_replicate_rest_period_5_latency_13_5(self):
        m = pipeline_mapping(
            self.app, self.plat,
            [([1], [0, 1]), ([2, 3, 4], [2, 3])],
            kinds=[D, R],
        )
        assert pipeline_period(m) == pytest.approx(5.0)
        assert pipeline_latency(m) == pytest.approx(13.5)

    def test_dp_s1_three_procs_latency_12_8(self):
        m = pipeline_mapping(
            self.app, self.plat,
            [([1], [0, 1, 2]), ([2, 3, 4], [3])],
            kinds=[D, R],
        )
        assert pipeline_latency(m) == pytest.approx(12.8)
        assert pipeline_period(m) == pytest.approx(10.0)

    def test_better_than_paper_period_4_5(self):
        # the erratum mapping: replicate [S1,S2] on the fast pair
        m = pipeline_mapping(
            self.app, self.plat, [([1, 2], [0, 1]), ([3, 4], [2, 3])]
        )
        assert pipeline_period(m) == pytest.approx(4.5)

    def test_better_than_paper_latency_8_5(self):
        m = pipeline_mapping(
            self.app, self.plat,
            [([1], [1, 2, 3]), ([2, 3, 4], [0])],
            kinds=[D, R],
        )
        assert pipeline_latency(m) == pytest.approx(8.5)


class TestForkCosts:
    def test_period_is_max_group_period(self):
        app = ForkApplication.from_works(2.0, [4.0, 6.0])
        plat = Platform.homogeneous(3, 1.0)
        m = fork_mapping(app, plat, [([0, 1], [0]), ([2], [1, 2])])
        # root group: 6 work on 1 proc -> 6; branch group: 6/(2*1) = 3
        assert fork_period(m) == pytest.approx(6.0)

    def test_latency_flexible_model(self):
        app = ForkApplication.from_works(2.0, [4.0, 6.0])
        plat = Platform.homogeneous(3, 1.0)
        m = fork_mapping(app, plat, [([0, 1], [0]), ([2], [1])])
        # tmax(1) = 6; w0/s + tmax(2) = 2 + 6 = 8
        assert fork_latency(m) == pytest.approx(8.0)

    def test_latency_single_group(self):
        app = ForkApplication.from_works(2.0, [4.0])
        plat = Platform.homogeneous(2, 1.0)
        m = fork_mapping(app, plat, [([0, 1], [0, 1])])
        assert fork_latency(m) == pytest.approx(6.0)
        assert fork_period(m) == pytest.approx(3.0)

    def test_root_data_parallel_speed(self):
        app = ForkApplication.from_works(6.0, [3.0])
        plat = Platform.heterogeneous([2.0, 1.0, 1.0])
        m = fork_mapping(
            app, plat, [([0], [0, 1]), ([1], [2])], kinds=[D, R]
        )
        # s0 = 2 + 1 = 3 -> t0 = 2; branch delay 3 -> latency 5
        assert fork_latency(m) == pytest.approx(5.0)

    def test_root_replicated_speed_is_min(self):
        app = ForkApplication.from_works(6.0, [3.0])
        plat = Platform.heterogeneous([2.0, 1.0, 1.0])
        m = fork_mapping(app, plat, [([0], [0, 1]), ([1], [2])], kinds=[R, R])
        # s0 = min(2,1) = 1 -> t0 = 6; latency = max(6, 6+3) = 9
        assert fork_latency(m) == pytest.approx(9.0)


class TestForkJoinCosts:
    def test_join_waits_for_all_branches(self):
        app = ForkJoinApplication.from_works(1.0, [2.0, 10.0], 3.0)
        plat = Platform.homogeneous(3, 1.0)
        m = fork_mapping(
            app, plat, [([0, 1], [0]), ([2], [1]), ([3], [2])]
        )
        # t0=1; root branches done 3; other branch done 1+10=11;
        # join starts at 11, ends 14
        assert forkjoin_latency(m) == pytest.approx(14.0)

    def test_join_in_root_group(self):
        app = ForkJoinApplication.from_works(1.0, [2.0, 4.0], 3.0)
        plat = Platform.homogeneous(2, 1.0)
        m = fork_mapping(app, plat, [([0, 1, 3], [0]), ([2], [1])])
        # t0=1, root branch done 3, other done 5; join 5 -> 8
        assert forkjoin_latency(m) == pytest.approx(8.0)
        # period: root group work = 1+2+3 = 6 on one proc
        assert forkjoin_period(m) == pytest.approx(6.0)

    def test_join_alone_data_parallel(self):
        app = ForkJoinApplication.from_works(1.0, [2.0], 8.0)
        plat = Platform.homogeneous(4, 1.0)
        m = fork_mapping(
            app, plat,
            [([0, 1], [0]), ([2], [1, 2])],
            kinds=[R, D],
        )
        # branches done at 3 (root group); join dp on 2 procs: 8/2 = 4
        assert forkjoin_latency(m) == pytest.approx(7.0)

    def test_evaluate_dispatch(self):
        app = ForkJoinApplication.from_works(1.0, [2.0], 1.0)
        plat = Platform.homogeneous(2, 1.0)
        m = fork_mapping(app, plat, [([0, 1, 2], [0, 1])])
        period, latency = evaluate(m)
        assert period == pytest.approx(2.0)
        assert latency == pytest.approx(4.0)

    def test_evaluate_type_error(self):
        with pytest.raises(TypeError):
            evaluate(42)


class TestGroupFormulaGuards:
    """Malformed speed sequences must fail loudly, not cryptically."""

    def test_empty_speeds_period(self):
        with pytest.raises(ReproError, match="at least one processor speed"):
            group_period(10.0, [], R)

    def test_empty_speeds_delay(self):
        with pytest.raises(ReproError, match="at least one processor speed"):
            group_delay(10.0, (), D)

    def test_zero_speed(self):
        with pytest.raises(ReproError, match="must be positive"):
            group_period(10.0, [2.0, 0.0], R)

    def test_negative_speed_dp(self):
        with pytest.raises(ReproError, match="must be positive"):
            group_delay(10.0, [1.0, -3.0], D)

    def test_valid_groups_unaffected(self):
        assert group_period(10.0, [2.0], R) == pytest.approx(5.0)
        assert group_delay(10.0, [2.0, 3.0], D) == pytest.approx(2.0)
