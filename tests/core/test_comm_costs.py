"""Unit tests for the communication-aware model (Eq. 1-2 of Section 3.3)."""

import pytest

from repro.core import (
    CommunicationModel,
    InvalidMappingError,
    InvalidPlatformError,
    OnePortInterval,
    PipelineApplication,
    Platform,
    interval_costs,
    pipeline_latency_with_comm,
    pipeline_period_with_comm,
)

APP = PipelineApplication.from_works(
    [4.0, 6.0, 2.0], data_sizes=[8.0, 4.0, 2.0, 1.0]
)


def make_platform(bandwidth=2.0):
    return Platform.homogeneous(3, speed=2.0, bandwidth=bandwidth)


class TestIntervalCosts:
    def test_single_interval(self):
        plat = make_platform()
        cost = interval_costs(APP, plat, [OnePortInterval(1, 3, 0)])
        # recv 8/2 + compute 12/2 + send 1/2
        assert cost == [pytest.approx(4.0 + 6.0 + 0.5)]

    def test_two_intervals_strict(self):
        plat = make_platform()
        costs = interval_costs(
            APP, plat,
            [OnePortInterval(1, 1, 0), OnePortInterval(2, 3, 1)],
        )
        # I1: 8/2 + 4/2 + 4/2 = 8 ; I2: 4/2 + 8/2 + 1/2 = 6.5
        assert costs == [pytest.approx(8.0), pytest.approx(6.5)]

    def test_overlap_model_takes_max(self):
        plat = make_platform()
        costs = interval_costs(
            APP, plat,
            [OnePortInterval(1, 1, 0), OnePortInterval(2, 3, 1)],
            model=CommunicationModel.MULTI_PORT_OVERLAP,
        )
        assert costs == [pytest.approx(4.0), pytest.approx(4.0)]

    def test_same_processor_communication_free(self):
        plat = make_platform()
        costs = interval_costs(
            APP, plat,
            [OnePortInterval(1, 1, 0), OnePortInterval(2, 3, 0)],
        )
        # no transfer between the two intervals (same processor)
        assert costs[0] == pytest.approx(4.0 + 2.0)
        assert costs[1] == pytest.approx(4.0 + 0.5)

    def test_period_and_latency(self):
        plat = make_platform()
        intervals = [OnePortInterval(1, 1, 0), OnePortInterval(2, 3, 1)]
        assert pipeline_period_with_comm(APP, plat, intervals) == pytest.approx(8.0)
        assert pipeline_latency_with_comm(APP, plat, intervals) == pytest.approx(14.5)

    def test_zero_sizes_cost_nothing(self):
        app = PipelineApplication.from_works([4.0, 6.0])
        plat = make_platform()
        costs = interval_costs(
            app, plat, [OnePortInterval(1, 1, 0), OnePortInterval(2, 2, 1)]
        )
        assert costs == [pytest.approx(2.0), pytest.approx(3.0)]

    def test_requires_interconnect_for_nonzero_sizes(self):
        plat = Platform.homogeneous(3, 2.0)  # no interconnect
        with pytest.raises(InvalidPlatformError):
            interval_costs(
                APP, plat,
                [OnePortInterval(1, 1, 0), OnePortInterval(2, 3, 1)],
            )

    def test_rejects_bad_cover(self):
        plat = make_platform()
        with pytest.raises(InvalidMappingError):
            interval_costs(APP, plat, [OnePortInterval(1, 2, 0)])
        with pytest.raises(InvalidMappingError):
            interval_costs(
                APP, plat,
                [OnePortInterval(2, 3, 0)],
            )
        with pytest.raises(InvalidMappingError):
            interval_costs(APP, plat, [])

    def test_simplified_model_is_comm_model_with_zero_sizes(self):
        """With zero data sizes the general model degenerates to the
        simplified one (single-processor intervals)."""
        from tests.conftest import pipeline_mapping
        from repro.core import pipeline_latency, pipeline_period

        app = PipelineApplication.from_works([4.0, 6.0, 2.0])
        plat = make_platform()
        intervals = [OnePortInterval(1, 2, 0), OnePortInterval(3, 3, 1)]
        mapping = pipeline_mapping(app, plat, [([1, 2], [0]), ([3], [1])])
        assert pipeline_period_with_comm(app, plat, intervals) == pytest.approx(
            pipeline_period(mapping)
        )
        assert pipeline_latency_with_comm(app, plat, intervals) == pytest.approx(
            pipeline_latency(mapping)
        )
