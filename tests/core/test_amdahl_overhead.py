"""Tests for the Amdahl data-parallelization overhead extension (§3.3).

The paper: "we may assume that a fraction of the computations is inherently
sequential ... introduce a fixed overhead f_i ... for computations we
obtain f_i + w_i / sum(s_qu)".  Zero overhead recovers the simplified model
exactly; these tests pin both regimes.
"""

import random

import pytest

import repro
from repro.algorithms import brute_force as bf
from repro.algorithms import pipeline_hom_platform as hom
from repro.algorithms.problem import Objective, ProblemSpec
from repro.core import (
    AssignmentKind,
    InvalidApplicationError,
    Stage,
    UnsupportedVariantError,
    group_delay,
    group_period,
)
from repro.simulation import simulate
from tests.conftest import fork_mapping, pipeline_mapping

D = AssignmentKind.DATA_PARALLEL
R = AssignmentKind.REPLICATED


class TestGroupFormulas:
    def test_dp_pays_overhead(self):
        assert group_period(12.0, [2.0, 2.0], D, dp_overhead=1.5) == pytest.approx(4.5)
        assert group_delay(12.0, [2.0, 2.0], D, dp_overhead=1.5) == pytest.approx(4.5)

    def test_replication_never_pays_overhead(self):
        assert group_period(12.0, [2.0, 2.0], R, dp_overhead=99.0) == pytest.approx(3.0)
        assert group_delay(12.0, [2.0, 2.0], R, dp_overhead=99.0) == pytest.approx(6.0)

    def test_stage_rejects_negative_overhead(self):
        with pytest.raises(InvalidApplicationError):
            Stage(index=1, work=1.0, dp_overhead=-0.5)


class TestMappingCosts:
    def test_pipeline_dp_group_cost(self):
        app = repro.PipelineApplication.from_works(
            [8.0, 4.0], dp_overheads=[2.0, 0.0]
        )
        plat = repro.Platform.homogeneous(3, 1.0)
        m = pipeline_mapping(
            app, plat, [([1], [0, 1]), ([2], [2])], kinds=[D, R]
        )
        # dp group: 2 + 8/2 = 6; replicated: 4
        assert repro.pipeline_period(m) == pytest.approx(6.0)
        assert repro.pipeline_latency(m) == pytest.approx(10.0)

    def test_fork_root_dp_overhead_delays_branches(self):
        root = Stage(index=0, work=6.0, dp_overhead=1.0)
        branches = (Stage(index=1, work=3.0),)
        app = repro.ForkApplication(root=root, branches=branches)
        plat = repro.Platform.heterogeneous([2.0, 1.0, 1.0])
        m = fork_mapping(app, plat, [([0], [0, 1]), ([1], [2])], kinds=[D, R])
        # t0 = 1 + 6/3 = 3; branch delay 3 -> latency 6
        assert repro.fork_latency(m) == pytest.approx(6.0)

    def test_zero_overhead_recovers_simplified_model(self):
        app = repro.PipelineApplication.from_works([8.0, 4.0])
        plat = repro.Platform.homogeneous(3, 1.0)
        m = pipeline_mapping(app, plat, [([1], [0, 1]), ([2], [2])], kinds=[D, R])
        assert repro.pipeline_period(m) == pytest.approx(4.0)


class TestSolversWithOverhead:
    def test_thm3_dp_accounts_for_overhead(self):
        """With a large overhead, data-parallelizing stops paying off and
        the Theorem 3 DP must fall back to a plain mapping."""
        plat = repro.Platform.homogeneous(3, 1.0)
        cheap = repro.PipelineApplication.from_works(
            [14, 4, 2, 4], dp_overheads=[0.0, 0, 0, 0]
        )
        dear = repro.PipelineApplication.from_works(
            [14, 4, 2, 4], dp_overheads=[100.0, 100, 100, 100]
        )
        assert hom.min_latency_with_dp(cheap, plat).latency == pytest.approx(17.0)
        assert hom.min_latency_with_dp(dear, plat).latency == pytest.approx(24.0)

    def test_thm3_matches_brute_force_with_overheads(self):
        rng = random.Random(44)
        for _ in range(8):
            n, p = rng.randint(1, 4), rng.randint(1, 4)
            app = repro.PipelineApplication.from_works(
                [rng.randint(1, 9) for _ in range(n)],
                dp_overheads=[rng.choice([0.0, 0.5, 2.0]) for _ in range(n)],
            )
            plat = repro.Platform.homogeneous(p, 1.0)
            spec = ProblemSpec(app, plat, True)
            want = bf.optimal(spec, Objective.LATENCY).latency
            got = hom.min_latency_with_dp(app, plat).latency
            assert got == pytest.approx(want)

    def test_thm4_bicriteria_with_overheads(self):
        rng = random.Random(45)
        for _ in range(6):
            n, p = rng.randint(1, 4), rng.randint(1, 4)
            app = repro.PipelineApplication.from_works(
                [rng.randint(1, 9) for _ in range(n)],
                dp_overheads=[rng.choice([0.0, 1.0]) for _ in range(n)],
            )
            plat = repro.Platform.homogeneous(p, 1.0)
            spec = ProblemSpec(app, plat, True)
            K = bf.optimal(spec, Objective.PERIOD).period * (1 + rng.random())
            want = bf.optimal(spec, Objective.LATENCY, period_bound=K).latency
            got = hom.min_latency_given_period(app, plat, K, True).latency
            assert got == pytest.approx(want)

    def test_fork_solver_guards_against_overheads(self):
        from repro.algorithms import fork_hom_platform as fhom

        root = Stage(index=0, work=2.0, dp_overhead=1.0)
        branches = tuple(Stage(index=i, work=3.0) for i in (1, 2))
        app = repro.ForkApplication(root=root, branches=branches)
        plat = repro.Platform.homogeneous(3, 1.0)
        with pytest.raises(UnsupportedVariantError):
            fhom.min_latency(app, plat, allow_data_parallel=True)
        # without data-parallelism the overhead is never paid: still fine
        sol = fhom.min_latency(app, plat, allow_data_parallel=False)
        assert sol.latency > 0


class TestSimulatorWithOverhead:
    def test_pipeline_simulation_matches(self):
        app = repro.PipelineApplication.from_works(
            [8.0, 4.0], dp_overheads=[2.0, 0.0]
        )
        plat = repro.Platform.homogeneous(3, 1.0)
        m = pipeline_mapping(app, plat, [([1], [0, 1]), ([2], [2])], kinds=[D, R])
        res = simulate(m, num_data_sets=300)
        assert res.measured_period == pytest.approx(6.0, rel=0.02)
        assert res.max_latency <= 10.0 + 1e-6

    def test_fork_simulation_matches(self):
        root = Stage(index=0, work=6.0, dp_overhead=1.0)
        branches = (Stage(index=1, work=3.0),)
        app = repro.ForkApplication(root=root, branches=branches)
        plat = repro.Platform.heterogeneous([2.0, 1.0, 1.0])
        m = fork_mapping(app, plat, [([0], [0, 1]), ([1], [2])], kinds=[D, R])
        period, latency = repro.evaluate(m)
        res = simulate(m, num_data_sets=300)
        assert res.measured_period == pytest.approx(period, rel=0.02)
        assert res.max_latency <= latency + 1e-6
