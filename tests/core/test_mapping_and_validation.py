"""Unit tests for mapping structures and Section 3.4 validity rules."""

import pytest

from repro.core import (
    AssignmentKind,
    ForkApplication,
    ForkJoinApplication,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    InvalidMappingError,
    PipelineApplication,
    PipelineMapping,
    Platform,
    is_valid,
    validate,
)

APP = PipelineApplication.from_works([1, 2, 3])
FORK = ForkApplication.from_works(1.0, [1, 2, 3])
FJ = ForkJoinApplication.from_works(1.0, [1, 2], 2.0)
PLAT = Platform.homogeneous(4)


def g(stages, procs, kind=AssignmentKind.REPLICATED):
    return GroupAssignment(stages=tuple(stages), processors=tuple(procs), kind=kind)


class TestGroupAssignment:
    def test_sorting_normalization(self):
        grp = GroupAssignment(stages=(3, 1), processors=(2, 0))
        assert grp.stages == (1, 3)
        assert grp.processors == (0, 2)

    def test_rejects_empty(self):
        with pytest.raises(InvalidMappingError):
            GroupAssignment(stages=(), processors=(0,))
        with pytest.raises(InvalidMappingError):
            GroupAssignment(stages=(1,), processors=())

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidMappingError):
            GroupAssignment(stages=(1, 1), processors=(0,))

    def test_is_interval(self):
        assert g([1, 2, 3], [0]).is_interval
        assert not g([1, 3], [0]).is_interval

    def test_describe(self):
        assert "S1" in g([1], [0]).describe()
        assert "P1" in g([1], [0]).describe()


class TestPipelineMapping:
    def test_valid_two_groups(self):
        m = PipelineMapping(
            application=APP, platform=PLAT,
            groups=(g([1], [0]), g([2, 3], [1, 2])),
        )
        assert m.used_processors == (0, 1, 2)

    def test_rejects_gap(self):
        with pytest.raises(InvalidMappingError):
            PipelineMapping(
                application=APP, platform=PLAT,
                groups=(g([1], [0]), g([3], [1])),
            )

    def test_rejects_non_interval_group(self):
        with pytest.raises(InvalidMappingError):
            PipelineMapping(
                application=APP, platform=PLAT,
                groups=(g([1, 3], [0]), g([2], [1])),
            )

    def test_rejects_missing_tail(self):
        with pytest.raises(InvalidMappingError):
            PipelineMapping(application=APP, platform=PLAT, groups=(g([1, 2], [0]),))

    def test_rejects_processor_overlap(self):
        with pytest.raises(InvalidMappingError):
            PipelineMapping(
                application=APP, platform=PLAT,
                groups=(g([1], [0]), g([2, 3], [0, 1])),
            )

    def test_rejects_unknown_processor(self):
        with pytest.raises(InvalidMappingError):
            PipelineMapping(
                application=APP, platform=PLAT, groups=(g([1, 2, 3], [7]),)
            )


class TestForkMapping:
    def test_root_group(self):
        m = ForkMapping(
            application=FORK, platform=PLAT,
            groups=(g([0, 2], [0]), g([1, 3], [1])),
        )
        assert m.root_group.stages == (0, 2)
        assert len(m.non_root_groups) == 1

    def test_rejects_partial_cover(self):
        with pytest.raises(InvalidMappingError):
            ForkMapping(
                application=FORK, platform=PLAT, groups=(g([0, 1], [0]),)
            )

    def test_rejects_double_stage(self):
        with pytest.raises(InvalidMappingError):
            ForkMapping(
                application=FORK, platform=PLAT,
                groups=(g([0, 1, 2, 3], [0]), g([3], [1])),
            )

    def test_forkjoin_join_group(self):
        m = ForkJoinMapping(
            application=FJ, platform=PLAT,
            groups=(g([0, 1], [0]), g([2, 3], [1])),
        )
        assert m.join_group.stages == (2, 3)


class TestValidationRules:
    def test_pipeline_dp_singleton_ok(self):
        m = PipelineMapping(
            application=APP, platform=PLAT,
            groups=(
                g([1], [0, 1], AssignmentKind.DATA_PARALLEL),
                g([2, 3], [2]),
            ),
        )
        validate(m, allow_data_parallel=True)
        assert not is_valid(m, allow_data_parallel=False)

    def test_pipeline_dp_interval_forbidden(self):
        m = PipelineMapping(
            application=APP, platform=PLAT,
            groups=(
                g([1, 2], [0, 1], AssignmentKind.DATA_PARALLEL),
                g([3], [2]),
            ),
        )
        assert not is_valid(m, allow_data_parallel=True)

    def test_fork_root_dp_alone_ok(self):
        m = ForkMapping(
            application=FORK, platform=PLAT,
            groups=(
                g([0], [0, 1], AssignmentKind.DATA_PARALLEL),
                g([1, 2, 3], [2, 3], AssignmentKind.DATA_PARALLEL),
            ),
        )
        validate(m, allow_data_parallel=True)

    def test_fork_root_dp_with_branches_forbidden(self):
        m = ForkMapping(
            application=FORK, platform=PLAT,
            groups=(
                g([0, 1], [0, 1], AssignmentKind.DATA_PARALLEL),
                g([2, 3], [2]),
            ),
        )
        assert not is_valid(m, allow_data_parallel=True)

    def test_fork_branches_dp_together_ok(self):
        # independent stages may share a data-parallel group (fork only)
        m = ForkMapping(
            application=FORK, platform=PLAT,
            groups=(
                g([0], [0]),
                g([1, 2, 3], [1, 2], AssignmentKind.DATA_PARALLEL),
            ),
        )
        validate(m, allow_data_parallel=True)

    def test_forkjoin_join_dp_with_branches_forbidden(self):
        m = ForkJoinMapping(
            application=FJ, platform=PLAT,
            groups=(
                g([0], [0]),
                g([1, 2, 3], [1, 2], AssignmentKind.DATA_PARALLEL),
            ),
        )
        assert not is_valid(m, allow_data_parallel=True)

    def test_forkjoin_join_dp_alone_ok(self):
        m = ForkJoinMapping(
            application=FJ, platform=PLAT,
            groups=(
                g([0, 1, 2], [0]),
                g([3], [1, 2], AssignmentKind.DATA_PARALLEL),
            ),
        )
        validate(m, allow_data_parallel=True)

    def test_no_dp_variant_rejects_any_dp(self):
        m = ForkMapping(
            application=FORK, platform=PLAT,
            groups=(
                g([0], [0]),
                g([1, 2, 3], [1, 2], AssignmentKind.DATA_PARALLEL),
            ),
        )
        assert not is_valid(m, allow_data_parallel=False)

    def test_validate_type_error(self):
        with pytest.raises(TypeError):
            validate(object())
