"""The numpy batch evaluator must agree with the scalar cost model."""

import random

import numpy as np
import pytest

import repro
from repro.core import ReproError, Stage, batch_evaluate, evaluate
from repro.core.batch_eval import BatchEvaluator
from repro.heuristics import random_fork_mapping, random_pipeline_mapping


def _random_platform(rng):
    p = rng.randint(1, 5)
    return repro.Platform.heterogeneous(
        [rng.choice([1, 2, 3]) for _ in range(p)]
    )


def _overheads(rng, n):
    return [round(rng.random(), 2) for _ in range(n)]


class TestAgainstScalarModel:
    def test_pipeline_with_overheads(self):
        rng = random.Random(11)
        for _ in range(30):
            n = rng.randint(1, 5)
            app = repro.PipelineApplication.from_works(
                [rng.randint(1, 9) for _ in range(n)],
                dp_overheads=_overheads(rng, n),
            )
            plat = _random_platform(rng)
            mappings = [
                random_pipeline_mapping(app, plat, rng, True).mapping
                for _ in range(8)
            ]
            BatchEvaluator(app, plat).cross_check(mappings)

    def test_fork_and_forkjoin_with_overheads(self):
        rng = random.Random(12)
        for _ in range(30):
            n = rng.randint(1, 4)
            root = Stage(index=0, work=float(rng.randint(1, 9)),
                         dp_overhead=rng.random())
            branches = tuple(
                Stage(index=k + 1, work=float(rng.randint(1, 9)),
                      dp_overhead=rng.random())
                for k in range(n)
            )
            if rng.random() < 0.5:
                app = repro.ForkApplication(root=root, branches=branches)
            else:
                app = repro.ForkJoinApplication(
                    root=root, branches=branches,
                    join=Stage(index=n + 1, work=float(rng.randint(1, 9)),
                               dp_overhead=rng.random()),
                )
            plat = _random_platform(rng)
            mappings = [
                random_fork_mapping(app, plat, rng, True).mapping
                for _ in range(8)
            ]
            BatchEvaluator(app, plat).cross_check(mappings)

    def test_batch_evaluate_convenience(self):
        app = repro.PipelineApplication.from_works([4.0, 2.0])
        plat = repro.Platform.homogeneous(2)
        rng = random.Random(0)
        mappings = [
            random_pipeline_mapping(app, plat, rng).mapping for _ in range(5)
        ]
        periods, latencies = batch_evaluate(mappings)
        for mapping, bp, bl in zip(mappings, periods, latencies):
            period, latency = evaluate(mapping)
            assert bp == pytest.approx(period)
            assert bl == pytest.approx(latency)


class TestEdges:
    def test_empty_batch(self):
        periods, latencies = batch_evaluate([])
        assert periods.size == 0 and latencies.size == 0
        app = repro.PipelineApplication.from_works([1.0])
        plat = repro.Platform.homogeneous(1)
        periods, latencies = BatchEvaluator(app, plat).evaluate([])
        assert periods.size == 0 and latencies.size == 0

    def test_rejects_unknown_type(self):
        with pytest.raises(ReproError):
            batch_evaluate([object()])

    def test_cross_check_reports_drift(self):
        app = repro.PipelineApplication.from_works([4.0, 2.0])
        plat = repro.Platform.homogeneous(2)
        ev = BatchEvaluator(app, plat)
        rng = random.Random(0)
        mapping = random_pipeline_mapping(app, plat, rng).mapping
        # poison the memoized subset metrics to force a disagreement
        ev._subset_cache.update(
            {g.processors: (0.125, 0.125, 1) for g in mapping.groups}
        )
        with pytest.raises(ReproError):
            ev.cross_check([mapping])

    def test_single_mapping_matches_scalar(self):
        # deterministic single-group sanity values
        app = repro.PipelineApplication.from_works([6.0])
        plat = repro.Platform.heterogeneous([2.0, 1.0])
        mapping = repro.PipelineMapping(
            application=app, platform=plat,
            groups=(repro.GroupAssignment(stages=(1,), processors=(0, 1)),),
        )
        periods, latencies = batch_evaluate([mapping])
        assert np.allclose(periods, [3.0])   # 6 / (2 * 1)
        assert np.allclose(latencies, [6.0])  # 6 / 1
