"""Unit tests for the platform model."""

import numpy as np
import pytest

from repro.core import IN, OUT, Interconnect, InvalidPlatformError, Platform, Processor


class TestProcessor:
    def test_basic(self):
        p = Processor(index=2, speed=1.5)
        assert p.label == "P3"

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(InvalidPlatformError):
            Processor(index=0, speed=0.0)


class TestPlatform:
    def test_homogeneous(self):
        plat = Platform.homogeneous(4, 2.0)
        assert plat.p == 4
        assert plat.is_homogeneous
        assert plat.total_speed == 8.0
        assert plat.speeds == (2.0, 2.0, 2.0, 2.0)

    def test_heterogeneous(self):
        plat = Platform.heterogeneous([2, 2, 1, 1])
        assert not plat.is_homogeneous
        assert plat.fastest.index == 0  # ties broken by lowest index
        assert plat.total_speed == 6.0

    def test_speed_array(self):
        plat = Platform.heterogeneous([3, 1])
        assert np.allclose(plat.speed_array, [3.0, 1.0])

    def test_sorted_by_speed(self):
        plat = Platform.heterogeneous([2, 1, 3])
        asc = plat.sorted_by_speed()
        assert [p.speed for p in asc] == [1.0, 2.0, 3.0]
        desc = plat.sorted_by_speed(descending=True)
        assert [p.speed for p in desc] == [3.0, 2.0, 1.0]

    def test_sort_is_stable_on_ties(self):
        plat = Platform.heterogeneous([2, 2, 1])
        asc = plat.sorted_by_speed()
        assert [p.index for p in asc] == [2, 0, 1]

    def test_subset_helpers(self):
        plat = Platform.heterogeneous([5, 3, 2])
        assert plat.subset_speeds([0, 2]) == (5.0, 2.0)
        assert plat.min_speed([0, 2]) == 2.0
        assert plat.sum_speed([0, 2]) == 7.0

    def test_rejects_empty(self):
        with pytest.raises(InvalidPlatformError):
            Platform(processors=())

    def test_rejects_bad_numbering(self):
        with pytest.raises(InvalidPlatformError):
            Platform(processors=(Processor(index=1, speed=1.0),))


class TestInterconnect:
    def test_uniform(self):
        inter = Interconnect.uniform(3, 2.0)
        assert inter.link(0, 1) == 2.0
        assert inter.link(IN, 2) == 2.0
        assert inter.link(1, OUT) == 2.0

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(InvalidPlatformError):
            Interconnect.uniform(2, 0.0)

    def test_rejects_non_square(self):
        with pytest.raises(InvalidPlatformError):
            Interconnect(
                bandwidth=((1.0,), (1.0,)),
                in_bandwidths=(1.0, 1.0),
                out_bandwidths=(1.0, 1.0),
            )

    def test_platform_with_bandwidth(self):
        plat = Platform.homogeneous(2, 1.0, bandwidth=4.0)
        assert plat.interconnect is not None
        assert plat.interconnect.link(0, 1) == 4.0

    def test_platform_interconnect_size_mismatch(self):
        with pytest.raises(InvalidPlatformError):
            Platform(
                processors=(Processor(0, 1.0),),
                interconnect=Interconnect.uniform(2, 1.0),
            )
