"""Unit tests for stages and the three application graph classes."""

import pytest

from repro.core import (
    ForkApplication,
    ForkJoinApplication,
    InvalidApplicationError,
    PipelineApplication,
    Stage,
)


class TestStage:
    def test_basic(self):
        s = Stage(index=3, work=5.0, input_size=1.0, output_size=2.0)
        assert s.label == "S3"
        assert s.time_on(2.0) == pytest.approx(2.5)

    def test_named(self):
        assert Stage(index=1, work=1.0, name="decode").label == "decode"

    def test_rejects_nonpositive_work(self):
        with pytest.raises(InvalidApplicationError):
            Stage(index=1, work=0.0)
        with pytest.raises(InvalidApplicationError):
            Stage(index=1, work=-3.0)

    def test_rejects_negative_sizes(self):
        with pytest.raises(InvalidApplicationError):
            Stage(index=1, work=1.0, input_size=-1.0)


class TestPipelineApplication:
    def test_from_works(self):
        app = PipelineApplication.from_works([14, 4, 2, 4])
        assert app.n == 4
        assert app.works == (14.0, 4.0, 2.0, 4.0)
        assert app.total_work == 24.0
        assert not app.is_homogeneous
        assert [s.index for s in app] == [1, 2, 3, 4]

    def test_homogeneous(self):
        app = PipelineApplication.homogeneous(5, 3.0)
        assert app.is_homogeneous
        assert app.total_work == 15.0

    def test_single_stage_is_homogeneous(self):
        assert PipelineApplication.from_works([7]).is_homogeneous

    def test_interval_work(self):
        app = PipelineApplication.from_works([14, 4, 2, 4])
        assert app.interval_work(0, 0) == 14.0
        assert app.interval_work(1, 3) == 10.0
        with pytest.raises(IndexError):
            app.interval_work(2, 4)
        with pytest.raises(IndexError):
            app.interval_work(3, 2)

    def test_data_sizes_chain(self):
        app = PipelineApplication.from_works([1, 2], data_sizes=[5, 3, 1])
        assert app.stages[0].input_size == 5.0
        assert app.stages[0].output_size == 3.0
        assert app.stages[1].input_size == 3.0
        assert app.stages[1].output_size == 1.0

    def test_data_sizes_length_check(self):
        with pytest.raises(InvalidApplicationError):
            PipelineApplication.from_works([1, 2], data_sizes=[1, 2])

    def test_rejects_empty(self):
        with pytest.raises(InvalidApplicationError):
            PipelineApplication(stages=())

    def test_rejects_bad_numbering(self):
        s1 = Stage(index=2, work=1.0)
        with pytest.raises(InvalidApplicationError):
            PipelineApplication(stages=(s1,))

    def test_rejects_size_mismatch(self):
        a = Stage(index=1, work=1.0, output_size=5.0)
        b = Stage(index=2, work=1.0, input_size=3.0)
        with pytest.raises(InvalidApplicationError):
            PipelineApplication(stages=(a, b))


class TestForkApplication:
    def test_from_works(self):
        app = ForkApplication.from_works(3.0, [1, 2, 5])
        assert app.n == 3
        assert app.root.index == 0
        assert app.branch_works == (1.0, 2.0, 5.0)
        assert app.total_work == 11.0
        assert not app.is_homogeneous
        assert len(app.all_stages) == 4

    def test_homogeneous_allows_different_root(self):
        app = ForkApplication.homogeneous(4, root_work=9.0, branch_work=2.0)
        assert app.is_homogeneous  # root weight may differ (paper definition)

    def test_stage_lookup(self):
        app = ForkApplication.from_works(3.0, [1, 2])
        assert app.stage(0).work == 3.0
        assert app.stage(2).work == 2.0
        with pytest.raises(IndexError):
            app.stage(3)

    def test_rejects_no_branches(self):
        with pytest.raises(InvalidApplicationError):
            ForkApplication.from_works(1.0, [])


class TestForkJoinApplication:
    def test_from_works(self):
        app = ForkJoinApplication.from_works(2.0, [1, 1, 1], 4.0)
        assert app.n == 3
        assert app.join.index == 4
        assert app.total_work == 9.0
        assert len(app.all_stages) == 5
        assert app.stage(4).work == 4.0

    def test_requires_join(self):
        with pytest.raises(InvalidApplicationError):
            ForkJoinApplication.from_works(2.0, [], 4.0)

    def test_homogeneous(self):
        app = ForkJoinApplication.homogeneous(3, 1.0, 2.0, 3.0)
        assert app.is_homogeneous
        assert app.join.work == 3.0
