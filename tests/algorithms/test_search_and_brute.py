"""Unit tests for the search helpers and brute-force enumerators."""

import pytest

from repro.algorithms import brute_force as bf
from repro.algorithms.problem import Objective, ProblemSpec
from repro.algorithms.search import (
    ceil_div_tol,
    floor_div_tol,
    smallest_feasible,
    unique_sorted,
)
from repro.core import (
    ForkApplication,
    InfeasibleProblemError,
    PipelineApplication,
    Platform,
)


class TestSearchHelpers:
    def test_unique_sorted(self):
        assert unique_sorted([3.0, 1.0, 1.0 + 1e-15, 2.0]) == [1.0, 2.0, 3.0]

    def test_smallest_feasible(self):
        candidates = [1.0, 2.0, 3.0, 4.0]
        assert smallest_feasible(candidates, lambda v: v >= 2.5) == 3.0
        assert smallest_feasible(candidates, lambda v: True) == 1.0

    def test_smallest_feasible_raises(self):
        with pytest.raises(InfeasibleProblemError):
            smallest_feasible([1.0, 2.0], lambda v: False)
        with pytest.raises(InfeasibleProblemError):
            smallest_feasible([], lambda v: True)

    def test_ceil_div_tol(self):
        assert ceil_div_tol(10.0, 2.0) == 5
        assert ceil_div_tol(10.000000001, 2.0) == 5  # tolerance above int
        assert ceil_div_tol(10.1, 2.0) == 6
        assert ceil_div_tol(0.0, 2.0) == 0

    def test_floor_div_tol(self):
        assert floor_div_tol(10.0, 2.0) == 5
        assert floor_div_tol(9.999999999, 2.0) == 5  # tolerance below int
        assert floor_div_tol(9.9, 2.0) == 4


class TestCombinatorics:
    def test_compositions_count(self):
        # compositions of n into k parts: C(n-1, k-1)
        assert len(list(bf.compositions(5, 2))) == 4
        assert len(list(bf.compositions(6, 3))) == 10
        assert list(bf.compositions(3, 1)) == [(3,)]

    def test_compositions_are_positive_and_sum(self):
        for comp in bf.compositions(6, 3):
            assert sum(comp) == 6
            assert all(part >= 1 for part in comp)

    def test_set_partitions_count(self):
        # Stirling numbers S(4, 2) = 7, S(4, 3) = 6
        assert len(list(bf.set_partitions(range(4), 2))) == 7
        assert len(list(bf.set_partitions(range(4), 3))) == 6
        assert len(list(bf.set_partitions(range(3), 1))) == 1

    def test_set_partitions_cover(self):
        for partition in bf.set_partitions(range(4), 2):
            items = sorted(x for block in partition for x in block)
            assert items == [0, 1, 2, 3]

    def test_processor_assignments(self):
        assignments = list(bf.processor_assignments(3, 2))
        # every assignment: two disjoint non-empty subsets of {0,1,2}
        for sets in assignments:
            assert len(sets) == 2
            assert all(sets)
            assert not (set(sets[0]) & set(sets[1]))
        # 3^3 colorings minus those missing group 1 or 2: 27 - 2*8 + 1 = 12
        assert len(assignments) == 12

    def test_processor_assignments_too_many_groups(self):
        assert list(bf.processor_assignments(2, 3)) == []


class TestBruteForce:
    def test_pipeline_enumeration_counts_single_stage(self):
        app = PipelineApplication.from_works([5])
        plat = Platform.homogeneous(2)
        mappings = list(bf.enumerate_pipeline_mappings(app, plat, False))
        # subsets of 2 processors, non-empty: {0}, {1}, {0,1}
        assert len(mappings) == 3

    def test_pipeline_enumeration_respects_dp_rules(self):
        app = PipelineApplication.from_works([5, 5])
        plat = Platform.homogeneous(3)
        for mapping in bf.enumerate_pipeline_mappings(app, plat, True):
            for group in mapping.groups:
                if group.kind.value == "data-parallel":
                    assert len(group.stages) == 1
                    assert len(group.processors) >= 2

    def test_fork_enumeration_root_rule(self):
        app = ForkApplication.from_works(1.0, [1.0, 1.0])
        plat = Platform.homogeneous(3)
        for mapping in bf.enumerate_fork_mappings(app, plat, True):
            for group in mapping.groups:
                if group.kind.value == "data-parallel" and 0 in group.stages:
                    assert group.stages == (0,)

    def test_optimal_respects_bounds(self):
        app = PipelineApplication.from_works([4, 4])
        plat = Platform.homogeneous(2)
        spec = ProblemSpec(app, plat, False)
        sol = bf.optimal(spec, Objective.LATENCY, period_bound=4.0)
        assert sol.period <= 4.0 + 1e-9

    def test_optimal_infeasible_bound(self):
        app = PipelineApplication.from_works([4, 4])
        plat = Platform.homogeneous(2)
        spec = ProblemSpec(app, plat, False)
        with pytest.raises(InfeasibleProblemError):
            bf.optimal(spec, Objective.LATENCY, period_bound=0.5)

    def test_known_optimum_tiny(self):
        # 2 stages (3, 1), 2 unit processors, no dp: best period = 2
        # (replicate both stages on both processors: 4/(2*1) = 2)
        app = PipelineApplication.from_works([3, 1])
        plat = Platform.homogeneous(2)
        spec = ProblemSpec(app, plat, False)
        assert bf.optimal(spec, Objective.PERIOD).period == pytest.approx(2.0)
