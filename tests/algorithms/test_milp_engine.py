"""Contracts of the MILP exact engine beyond value equality.

The three-way differential harness (``test_bnb_equivalence.py``) pins the
*values* the engine returns; these tests pin everything else the ISSUE
promises about it:

* **dual-bound soundness** — the LP relaxation never exceeds the true
  optimum on instances the combinatorial engines can close, and budgeted
  solves report nonnegative finite gaps against a bound the incumbent
  respects;
* **row-shape parity** — a ``status == "budget_exhausted"`` MILP solution
  carries every meta field the bnb anytime rows established, so campaign
  reports and the CLI render both identically;
* **engine-aware size guard** — ``engine="milp"`` lifts the unbudgeted
  guard past the combinatorial limits while the bnb / enumerate messages
  stay pinned;
* **skip machinery** — ``REPRO_MILP_BACKEND=none`` cleanly disables the
  engine and a missing backend surfaces the install hint, never an
  ``ImportError``.

Tests that solve through a backend carry the shared ``milp`` marker (see
the repo-root ``conftest.py``); the guard / skip tests run everywhere.
"""

import random

import pytest

import repro
from repro.algorithms import bnb, exact, milp, registry
from repro.algorithms import brute_force as bf
from repro.algorithms.budget import Budget
from repro.algorithms.problem import Objective, ProblemSpec
from repro.core import FLOAT_TOL, ReproError
from repro.core.validation import is_valid


def _het_pipeline(rng, n, p, dp=False):
    app = repro.PipelineApplication.from_works(
        [rng.randint(1, 9) for _ in range(n)]
    )
    plat = repro.Platform.heterogeneous(
        [rng.choice([1, 1, 2, 3, 5]) for _ in range(p)]
    )
    return ProblemSpec(app, plat, dp)


# ----------------------------------------------------------------------
# dual-bound soundness
# ----------------------------------------------------------------------
@pytest.mark.milp
def test_lp_lower_bound_never_exceeds_true_optimum():
    """LP relaxation <= integral optimum on every bnb-closable instance."""
    rng = random.Random(20260808)
    for _ in range(25):
        spec = _het_pipeline(
            rng, rng.randint(1, 6), rng.randint(1, 5), dp=rng.random() < 0.5
        )
        for objective in (Objective.PERIOD, Objective.LATENCY):
            true_opt = bnb.optimal(spec, objective).objective_value(objective)
            relaxed = milp.lp_lower_bound(spec, objective)
            assert relaxed <= true_opt * (1 + 1e-6) + 1e-9, (
                f"LP bound {relaxed} exceeds optimum {true_opt} "
                f"({objective}) on {spec.describe()}"
            )


@pytest.mark.milp
def test_lp_lower_bound_sound_under_thresholds():
    """The relaxation stays a valid bound for the bi-criteria solves."""
    rng = random.Random(20260809)
    for _ in range(10):
        spec = _het_pipeline(rng, rng.randint(2, 6), rng.randint(2, 5))
        opt_period = bnb.optimal(spec, Objective.PERIOD).period
        bound = opt_period * (1.0 + rng.random())
        constrained = bnb.optimal(
            spec, Objective.LATENCY, period_bound=bound
        ).latency
        relaxed = milp.lp_lower_bound(
            spec, Objective.LATENCY, period_bound=bound
        )
        assert relaxed <= constrained * (1 + 1e-6) + 1e-9


# ----------------------------------------------------------------------
# budgeted solves: gap soundness + row-shape parity with bnb
# ----------------------------------------------------------------------
@pytest.mark.milp
def test_budget_exhausted_row_matches_bnb_shape():
    """A budgeted MILP row is shape-identical to the bnb anytime rows.

    Same instance, both engines budgeted into exhaustion: every meta
    field the bnb rows established (PR 6) must be present with the same
    semantics, so downstream consumers (campaign reports, the CLI
    renderer, ``check_bench_regressions``) need no engine switch.
    """
    rng = random.Random(20260810)
    # n=20 period is far past what either engine closes in the budget
    spec = _het_pipeline(rng, 20, 8)
    sol_bnb = bf.optimal(
        spec, Objective.PERIOD, engine="bnb", budget=Budget(max_nodes=500)
    )
    sol_milp = bf.optimal(
        spec, Objective.PERIOD, engine="milp", budget=Budget(max_seconds=0.5)
    )
    assert sol_bnb.meta["status"] == "budget_exhausted"
    assert sol_milp.meta["status"] == "budget_exhausted"
    missing = set(sol_bnb.meta) - set(sol_milp.meta)
    assert not missing, f"milp anytime row lacks bnb fields {missing}"
    assert sol_milp.meta["algorithm"] == "milp"
    assert sol_milp.meta["budget_reason"] in ("max_seconds", "max_nodes")
    assert sol_milp.meta["budget"] == {"max_seconds": 0.5, "max_nodes": None}

    for sol in (sol_bnb, sol_milp):
        value = sol.period
        lower = sol.meta["lower_bound"]
        gap = sol.meta["gap"]
        assert is_valid(sol.mapping, spec.allow_data_parallel)
        assert 0.0 <= gap < float("inf")
        assert value >= lower - FLOAT_TOL * max(1.0, abs(lower))
        assert gap == pytest.approx((value - lower) / lower)


@pytest.mark.milp
def test_completed_budgeted_solve_is_proven_optimal():
    """A solve that finishes inside its budget is exact, gap-free."""
    rng = random.Random(20260811)
    spec = _het_pipeline(rng, 5, 4)
    want = bnb.optimal(spec, Objective.PERIOD).period
    sol = milp.optimal(
        spec, Objective.PERIOD, budget=Budget(max_seconds=60.0)
    )
    assert sol.meta["status"] == "optimal"
    assert "gap" not in sol.meta
    assert sol.period == pytest.approx(want)
    assert sol.meta["backend"] in ("pulp", "scipy")


# ----------------------------------------------------------------------
# engine-aware size guard
# ----------------------------------------------------------------------
@pytest.mark.milp
def test_milp_lifts_the_unbudgeted_size_guard():
    """n=12 refuses bnb/enumerate unbudgeted but solves with milp."""
    rng = random.Random(20260812)
    spec = _het_pipeline(rng, 12, 4)
    sol = exact.pipeline_exact(spec, Objective.LATENCY, engine="milp")
    assert sol.meta["status"] == "optimal"
    # latency of a het pipeline is minimized by one group on the fastest
    # processor — an independently checkable optimum
    fastest = max(p.speed for p in spec.platform.processors)
    assert sol.latency == pytest.approx(
        sum(spec.application.works) / fastest
    )


def test_size_guard_message_pinned_for_combinatorial_engines():
    rng = random.Random(20260813)
    spec = _het_pipeline(rng, 12, 4)
    for engine, limit in (("bnb", 10), ("enumerate", 7)):
        with pytest.raises(ReproError) as err:
            exact.pipeline_exact(spec, Objective.PERIOD, engine=engine)
        assert (
            f"exact solving with engine {engine!r} is limited to {limit} "
            "stages/processors" in str(err.value)
        )
        assert "n=12" in str(err.value)


def test_unknown_engine_lists_all_three():
    rng = random.Random(20260814)
    spec = _het_pipeline(rng, 3, 2)
    with pytest.raises(ReproError, match=r"\['bnb', 'enumerate', 'milp'\]"):
        exact.pipeline_exact(spec, Objective.PERIOD, engine="simplex")


# ----------------------------------------------------------------------
# registry integration
# ----------------------------------------------------------------------
@pytest.mark.milp
def test_registry_routes_milp_on_nphard_cells():
    """exact_fallback + engine="milp" reaches the MILP on NP-hard cells."""
    rng = random.Random(20260815)
    # het pipeline, period, no dp: the Theorem 9 NP-hard cell
    spec = _het_pipeline(rng, 6, 3)
    want = registry.solve(
        spec, Objective.PERIOD, exact_fallback=True, engine="bnb"
    )
    got = registry.solve(
        spec, Objective.PERIOD, exact_fallback=True, engine="milp"
    )
    assert got.meta["algorithm"] == "milp"
    assert got.period == pytest.approx(want.period)


# ----------------------------------------------------------------------
# skip machinery / backend selection
# ----------------------------------------------------------------------
def test_backend_env_none_disables_engine(monkeypatch):
    monkeypatch.setenv("REPRO_MILP_BACKEND", "none")
    assert not milp.milp_available()
    assert milp.backend_name() is None
    rng = random.Random(20260816)
    spec = _het_pipeline(rng, 3, 2)
    with pytest.raises(ReproError) as err:
        milp.optimal(spec, Objective.PERIOD)
    # the error is actionable (install hint), never a bare ImportError
    assert str(err.value) == milp.INSTALL_HINT
    assert "pip install" in str(err.value)


def test_backend_env_unknown_value_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_MILP_BACKEND", "glpk")
    with pytest.raises(ReproError, match="REPRO_MILP_BACKEND"):
        milp.milp_available()


@pytest.mark.milp
def test_backend_reported_in_meta():
    rng = random.Random(20260817)
    spec = _het_pipeline(rng, 4, 3)
    sol = milp.optimal(spec, Objective.PERIOD)
    assert sol.meta["algorithm"] == "milp"
    assert sol.meta["backend"] == milp.backend_name()
    assert sol.meta["nodes"] >= 0
