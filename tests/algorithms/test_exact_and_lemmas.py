"""Tests for the structured exact solvers and the Lemma 1/2 transforms."""

import random

import pytest

from repro.algorithms import brute_force as bf
from repro.algorithms import exact
from repro.algorithms.lemmas import (
    strip_data_parallelism_hom,
    strip_replication_for_latency,
)
from repro.algorithms.problem import Objective, ProblemSpec
from repro.core import (
    ForkApplication,
    PipelineApplication,
    Platform,
    ReproError,
    evaluate,
)
from repro.heuristics import random_fork_mapping, random_pipeline_mapping


class TestLemma1:
    def test_period_preserved_on_hom_platform(self):
        rng = random.Random(81)
        plat = Platform.homogeneous(4, 2.0)
        for _ in range(20):
            app = PipelineApplication.from_works(
                [rng.randint(1, 9) for _ in range(rng.randint(1, 5))]
            )
            sol = random_pipeline_mapping(app, plat, rng, allow_data_parallel=True)
            stripped = strip_data_parallelism_hom(sol.mapping)
            period, _ = evaluate(stripped)
            assert period == pytest.approx(sol.period)

    def test_rejects_het_platform(self):
        rng = random.Random(1)
        app = PipelineApplication.from_works([1, 2])
        plat = Platform.heterogeneous([1.0, 2.0])
        sol = random_pipeline_mapping(app, plat, rng)
        with pytest.raises(ReproError):
            strip_data_parallelism_hom(sol.mapping)


class TestLemma2:
    def test_latency_preserved_any_platform(self):
        rng = random.Random(82)
        for _ in range(20):
            p = rng.randint(1, 5)
            plat = Platform.heterogeneous([rng.randint(1, 5) for _ in range(p)])
            app = ForkApplication.from_works(
                rng.randint(1, 5),
                [rng.randint(1, 9) for _ in range(rng.randint(1, 4))],
            )
            sol = random_fork_mapping(app, plat, rng, allow_data_parallel=False)
            stripped = strip_replication_for_latency(sol.mapping)
            _, latency = evaluate(stripped)
            assert latency == pytest.approx(sol.latency)

    def test_frees_processors(self):
        rng = random.Random(83)
        app = PipelineApplication.from_works([3, 3])
        plat = Platform.homogeneous(4, 1.0)
        sol = random_pipeline_mapping(app, plat, rng)
        stripped = strip_replication_for_latency(sol.mapping)
        for group in stripped.groups:
            if group.kind.value == "replicated":
                assert group.k == 1


class TestPipelinePeriodExactBlocks:
    def test_matches_brute_force(self):
        rng = random.Random(91)
        for _ in range(10):
            n, p = rng.randint(1, 5), rng.randint(1, 5)
            app = PipelineApplication.from_works(
                [rng.randint(1, 9) for _ in range(n)]
            )
            plat = Platform.heterogeneous([rng.randint(1, 5) for _ in range(p)])
            want = bf.optimal(
                ProblemSpec(app, plat, False), Objective.PERIOD
            ).period
            got = exact.pipeline_period_exact_blocks(app, plat)
            assert got.period == pytest.approx(want)

    def test_handles_more_processors_than_stages(self):
        app = PipelineApplication.from_works([10, 1])
        plat = Platform.heterogeneous([1.0, 1.0, 1.0, 5.0])
        sol = exact.pipeline_period_exact_blocks(app, plat)
        want = bf.optimal(ProblemSpec(app, plat, False), Objective.PERIOD).period
        assert sol.period == pytest.approx(want)


class TestMakespanExact:
    def test_trivial(self):
        value, assign = exact.makespan_partition_exact([5.0], 3)
        assert value == pytest.approx(5.0)
        assert sorted(i for m in assign for i in m) == [0]

    def test_perfect_split(self):
        value, _ = exact.makespan_partition_exact([3.0, 3.0, 2.0, 2.0, 2.0], 2)
        assert value == pytest.approx(6.0)

    def test_matches_enumeration(self):
        rng = random.Random(92)
        import itertools

        for _ in range(10):
            n, m = rng.randint(1, 7), rng.randint(1, 3)
            works = [float(rng.randint(1, 9)) for _ in range(n)]
            want = min(
                max(
                    sum(w for w, c in zip(works, coloring) if c == machine)
                    for machine in range(m)
                )
                for coloring in itertools.product(range(m), repeat=n)
            )
            got, _ = exact.makespan_partition_exact(works, m)
            assert got == pytest.approx(want)

    def test_rejects_zero_machines(self):
        with pytest.raises(ReproError):
            exact.makespan_partition_exact([1.0], 0)


class TestForkLatencyExact:
    def test_matches_brute_force(self):
        rng = random.Random(93)
        for _ in range(8):
            n, p = rng.randint(1, 5), rng.randint(1, 4)
            app = ForkApplication.from_works(
                rng.randint(1, 9),
                [rng.randint(1, 9) for _ in range(n)],
            )
            plat = Platform.homogeneous(p, 1.0)
            want = bf.optimal(
                ProblemSpec(app, plat, False), Objective.LATENCY
            ).latency
            got = exact.fork_latency_exact_hom_platform(app, plat)
            assert got.latency == pytest.approx(want)

    def test_rejects_het_platform(self):
        app = ForkApplication.from_works(1.0, [1.0])
        with pytest.raises(ReproError):
            exact.fork_latency_exact_hom_platform(
                app, Platform.heterogeneous([1, 2])
            )


class TestBruteGuards:
    def test_size_guard_bnb(self):
        # the default bnb engine reaches n = p = 10, but no further
        app = PipelineApplication.homogeneous(11)
        plat = Platform.homogeneous(11)
        with pytest.raises(ReproError):
            exact.pipeline_exact(
                ProblemSpec(app, plat, False), Objective.PERIOD
            )

    def test_size_guard_enumerate(self):
        # flat enumeration keeps its historical n, p <= 7 guard
        app = PipelineApplication.homogeneous(8)
        plat = Platform.homogeneous(8)
        with pytest.raises(ReproError):
            exact.pipeline_exact(
                ProblemSpec(app, plat, False), Objective.PERIOD,
                engine="enumerate",
            )

    def test_bnb_engine_reaches_past_enumerate_guard(self):
        # n = p = 8 was out of reach for the old guard; bnb solves it
        app = PipelineApplication.homogeneous(8)
        plat = Platform.homogeneous(8)
        sol = exact.pipeline_exact(
            ProblemSpec(app, plat, False), Objective.PERIOD
        )
        # 8 unit stages replicated over 8 unit processors: period 1
        assert sol.period == pytest.approx(1.0)

    def test_unknown_engine_rejected(self):
        from repro.algorithms import brute_force as bf

        app = PipelineApplication.homogeneous(2)
        plat = Platform.homogeneous(2)
        with pytest.raises(ReproError):
            bf.optimal(
                ProblemSpec(app, plat, False), Objective.PERIOD,
                engine="quantum",
            )
