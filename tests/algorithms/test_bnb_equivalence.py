"""Property tests: the branch-and-bound engine equals exhaustive enumeration.

``brute_force.optimal_enumerated`` prices every valid mapping from scratch —
slow, but too simple to be wrong.  These tests draw hundreds of random
instances (all three graph shapes, heterogeneous speeds, optional
data-parallelism, nonzero Amdahl ``dp_overhead``) and assert that
``bnb.optimal`` reproduces the enumeration optimum exactly — for the period
objective, the latency objective, and the bi-criteria variants — including
agreeing on *infeasibility* of threshold combinations.
"""

import random

import pytest

import repro
from repro.algorithms import bnb
from repro.algorithms import brute_force as bf
from repro.algorithms.problem import Objective, ProblemSpec
from repro.core import FLOAT_TOL, InfeasibleProblemError, Stage

TRIALS_PER_SHAPE = 70  # x3 shapes = 210 instances, each checked 4 ways


def _random_overheads(rng, n):
    return [
        round(rng.random(), 2) if rng.random() < 0.4 else 0.0 for _ in range(n)
    ]


def _random_platform(rng):
    p = rng.randint(1, 5)
    return repro.Platform.heterogeneous(
        [rng.choice([1, 1, 2, 3, 5]) for _ in range(p)]
    )


def _random_pipeline_spec(rng):
    n = rng.randint(1, 5)
    app = repro.PipelineApplication.from_works(
        [rng.randint(1, 9) for _ in range(n)],
        dp_overheads=_random_overheads(rng, n),
    )
    return ProblemSpec(app, _random_platform(rng), rng.random() < 0.5)


def _random_fork_spec(rng):
    n = rng.randint(1, 4)
    root = Stage(
        index=0, work=float(rng.randint(1, 9)),
        dp_overhead=_random_overheads(rng, 1)[0],
    )
    branches = tuple(
        Stage(
            index=k + 1, work=float(rng.randint(1, 9)),
            dp_overhead=f,
        )
        for k, f in enumerate(_random_overheads(rng, n))
    )
    app = repro.ForkApplication(root=root, branches=branches)
    return ProblemSpec(app, _random_platform(rng), rng.random() < 0.5)


def _random_forkjoin_spec(rng):
    n = rng.randint(1, 3)
    root = Stage(
        index=0, work=float(rng.randint(1, 9)),
        dp_overhead=_random_overheads(rng, 1)[0],
    )
    branches = tuple(
        Stage(index=k + 1, work=float(rng.randint(1, 9)), dp_overhead=f)
        for k, f in enumerate(_random_overheads(rng, n))
    )
    join = Stage(
        index=n + 1, work=float(rng.randint(1, 9)),
        dp_overhead=_random_overheads(rng, 1)[0],
    )
    app = repro.ForkJoinApplication(root=root, branches=branches, join=join)
    return ProblemSpec(app, _random_platform(rng), rng.random() < 0.5)


def _enumeration_oracle(spec):
    """Price every valid mapping once; answer all queries from the cache.

    Mirrors :func:`brute_force.optimal_enumerated` (same ``FLOAT_TOL``
    threshold semantics) but amortizes the single expensive enumeration
    over the four queries each instance is checked with.
    """
    metrics = [repro.evaluate(m) for m in bf.enumerate_mappings(spec)]

    def best(objective, period_bound=None, latency_bound=None):
        values = [
            period if objective is Objective.PERIOD else latency
            for period, latency in metrics
            if (period_bound is None
                or period <= period_bound * (1 + FLOAT_TOL))
            and (latency_bound is None
                 or latency <= latency_bound * (1 + FLOAT_TOL))
        ]
        return min(values) if values else None

    return best


def _bnb_value(spec, objective, period_bound=None, latency_bound=None):
    try:
        return bnb.optimal(
            spec, objective, period_bound, latency_bound
        ).objective_value(objective)
    except InfeasibleProblemError:
        return None


def _check_instance(spec, rng):
    oracle = _enumeration_oracle(spec)
    optima = {}
    for objective in (Objective.PERIOD, Objective.LATENCY):
        want = oracle(objective)
        got = _bnb_value(spec, objective)
        assert want is not None and got is not None  # unbounded: always feasible
        assert got == pytest.approx(want), (
            f"{objective} mismatch on {spec.describe()}: "
            f"enumerate={want} bnb={got}"
        )
        optima[objective] = want
    # bi-criteria around the mono-criterion optima: a loose threshold (must
    # be feasible) and a too-tight one (both engines must agree either way)
    loose_k = optima[Objective.PERIOD] * (1.0 + rng.random())
    want = oracle(Objective.LATENCY, period_bound=loose_k)
    got = _bnb_value(spec, Objective.LATENCY, period_bound=loose_k)
    assert want is not None and got == pytest.approx(want), (
        f"bi-criteria (K={loose_k}) mismatch on {spec.describe()}: "
        f"enumerate={want} bnb={got}"
    )
    tight_l = optima[Objective.LATENCY] * (0.3 + 0.8 * rng.random())
    want = oracle(Objective.PERIOD, latency_bound=tight_l)
    got = _bnb_value(spec, Objective.PERIOD, latency_bound=tight_l)
    if want is None:
        assert got is None, (
            f"enumerate infeasible but bnb found {got} on {spec.describe()} "
            f"(L={tight_l})"
        )
    else:
        assert got == pytest.approx(want), (
            f"bi-criteria (L={tight_l}) mismatch on {spec.describe()}: "
            f"enumerate={want} bnb={got}"
        )


@pytest.mark.parametrize(
    "seed,builder",
    [
        (20260726, _random_pipeline_spec),
        (20260727, _random_fork_spec),
        (20260728, _random_forkjoin_spec),
    ],
    ids=["pipeline", "fork", "forkjoin"],
)
def test_bnb_matches_enumeration(seed, builder):
    rng = random.Random(seed)
    for _ in range(TRIALS_PER_SHAPE):
        _check_instance(builder(rng), rng)


def test_bnb_solution_is_valid_and_consistent():
    """The returned Solution re-evaluates to its reported metrics."""
    rng = random.Random(5)
    for builder in (
        _random_pipeline_spec, _random_fork_spec, _random_forkjoin_spec
    ):
        for _ in range(10):
            spec = builder(rng)
            sol = bnb.optimal(spec, Objective.PERIOD)
            period, latency = repro.evaluate(sol.mapping)
            assert sol.period == pytest.approx(period)
            assert sol.latency == pytest.approx(latency)
            assert sol.meta["algorithm"] == "bnb"
            assert sol.meta["nodes"] >= 1
