"""Differential property tests: every exact engine equals enumeration.

``brute_force.optimal_enumerated`` prices every valid mapping from scratch —
slow, but too simple to be wrong.  These tests draw hundreds of random
instances (all three graph shapes, homogeneous *and* heterogeneous
platforms, optional data-parallelism, nonzero Amdahl ``dp_overhead``) and
assert that each exact engine — the branch-and-bound search and the MILP
formulation of :mod:`repro.algorithms.milp` — reproduces the enumeration
optimum exactly: for the period objective, the latency objective, and the
bi-criteria variants, including agreeing on *infeasibility* of threshold
combinations.  Every solution an engine returns is additionally
revalidated through the real evaluators (:func:`repro.evaluate` /
:func:`repro.core.validation.is_valid`), so an engine cannot pass by
reporting the right value on an illegal mapping.

The MILP cells carry the shared ``milp`` marker (see the repo-root
``conftest.py``): they skip cleanly when no backend is installed.
"""

import random

import pytest

import repro
from repro.algorithms import bnb
from repro.algorithms import brute_force as bf
from repro.algorithms.problem import Objective, ProblemSpec
from repro.core import FLOAT_TOL, InfeasibleProblemError, Stage
from repro.core.validation import is_valid

# 3 shapes x 2 platform kinds x TRIALS = 210 instances per engine,
# each checked 4 ways (2 objectives + 2 bi-criteria thresholds).
TRIALS = 35

ENGINES = ["bnb", pytest.param("milp", marks=pytest.mark.milp)]


def _random_overheads(rng, n):
    return [
        round(rng.random(), 2) if rng.random() < 0.4 else 0.0 for _ in range(n)
    ]


def _random_platform(rng, homogeneous):
    p = rng.randint(1, 5)
    if homogeneous:
        return repro.Platform.homogeneous(p, float(rng.choice([1, 2, 3])))
    return repro.Platform.heterogeneous(
        [rng.choice([1, 1, 2, 3, 5]) for _ in range(p)]
    )


def _random_pipeline_spec(rng, homogeneous):
    n = rng.randint(1, 5)
    app = repro.PipelineApplication.from_works(
        [rng.randint(1, 9) for _ in range(n)],
        dp_overheads=_random_overheads(rng, n),
    )
    return ProblemSpec(
        app, _random_platform(rng, homogeneous), rng.random() < 0.5
    )


def _random_fork_spec(rng, homogeneous):
    n = rng.randint(1, 4)
    root = Stage(
        index=0, work=float(rng.randint(1, 9)),
        dp_overhead=_random_overheads(rng, 1)[0],
    )
    branches = tuple(
        Stage(
            index=k + 1, work=float(rng.randint(1, 9)),
            dp_overhead=f,
        )
        for k, f in enumerate(_random_overheads(rng, n))
    )
    app = repro.ForkApplication(root=root, branches=branches)
    return ProblemSpec(
        app, _random_platform(rng, homogeneous), rng.random() < 0.5
    )


def _random_forkjoin_spec(rng, homogeneous):
    n = rng.randint(1, 3)
    root = Stage(
        index=0, work=float(rng.randint(1, 9)),
        dp_overhead=_random_overheads(rng, 1)[0],
    )
    branches = tuple(
        Stage(index=k + 1, work=float(rng.randint(1, 9)), dp_overhead=f)
        for k, f in enumerate(_random_overheads(rng, n))
    )
    join = Stage(
        index=n + 1, work=float(rng.randint(1, 9)),
        dp_overhead=_random_overheads(rng, 1)[0],
    )
    app = repro.ForkJoinApplication(root=root, branches=branches, join=join)
    return ProblemSpec(
        app, _random_platform(rng, homogeneous), rng.random() < 0.5
    )


def _enumeration_oracle(spec):
    """Price every valid mapping once; answer all queries from the cache.

    Mirrors :func:`brute_force.optimal_enumerated` (same ``FLOAT_TOL``
    threshold semantics) but amortizes the single expensive enumeration
    over the four queries each instance is checked with.
    """
    metrics = [repro.evaluate(m) for m in bf.enumerate_mappings(spec)]

    def best(objective, period_bound=None, latency_bound=None):
        values = [
            period if objective is Objective.PERIOD else latency
            for period, latency in metrics
            if (period_bound is None
                or period <= period_bound * (1 + FLOAT_TOL))
            and (latency_bound is None
                 or latency <= latency_bound * (1 + FLOAT_TOL))
        ]
        return min(values) if values else None

    return best


def _engine_solution(engine, spec, objective,
                     period_bound=None, latency_bound=None):
    try:
        if engine == "milp":
            from repro.algorithms import milp

            return milp.optimal(spec, objective, period_bound, latency_bound)
        return bnb.optimal(spec, objective, period_bound, latency_bound)
    except InfeasibleProblemError:
        return None


def _engine_value(engine, spec, objective,
                  period_bound=None, latency_bound=None):
    """Objective value of an engine's solve, with the mapping revalidated.

    ``None`` means the engine proved the thresholds infeasible.  A real
    solution must decode to a mapping the independent validators accept
    and whose re-evaluated metrics match what the engine reported — the
    value alone could be right by accident on an illegal mapping.
    """
    solution = _engine_solution(
        engine, spec, objective, period_bound, latency_bound
    )
    if solution is None:
        return None
    assert is_valid(solution.mapping, spec.allow_data_parallel), (
        f"{engine} returned an invalid mapping on {spec.describe()}"
    )
    period, latency = repro.evaluate(solution.mapping)
    assert solution.period == pytest.approx(period)
    assert solution.latency == pytest.approx(latency)
    assert solution.meta["algorithm"] == engine
    return solution.objective_value(objective)


def _check_instance(engine, spec, rng):
    oracle = _enumeration_oracle(spec)
    optima = {}
    for objective in (Objective.PERIOD, Objective.LATENCY):
        want = oracle(objective)
        got = _engine_value(engine, spec, objective)
        assert want is not None and got is not None  # unbounded: always feasible
        assert got == pytest.approx(want), (
            f"{objective} mismatch on {spec.describe()}: "
            f"enumerate={want} {engine}={got}"
        )
        optima[objective] = want
    # bi-criteria around the mono-criterion optima: a loose threshold (must
    # be feasible) and a too-tight one (both engines must agree either way)
    loose_k = optima[Objective.PERIOD] * (1.0 + rng.random())
    want = oracle(Objective.LATENCY, period_bound=loose_k)
    got = _engine_value(engine, spec, Objective.LATENCY, period_bound=loose_k)
    assert want is not None and got == pytest.approx(want), (
        f"bi-criteria (K={loose_k}) mismatch on {spec.describe()}: "
        f"enumerate={want} {engine}={got}"
    )
    tight_l = optima[Objective.LATENCY] * (0.3 + 0.8 * rng.random())
    want = oracle(Objective.PERIOD, latency_bound=tight_l)
    got = _engine_value(engine, spec, Objective.PERIOD, latency_bound=tight_l)
    if want is None:
        assert got is None, (
            f"enumerate infeasible but {engine} found {got} on "
            f"{spec.describe()} (L={tight_l})"
        )
    else:
        assert got == pytest.approx(want), (
            f"bi-criteria (L={tight_l}) mismatch on {spec.describe()}: "
            f"enumerate={want} {engine}={got}"
        )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("homogeneous", [False, True], ids=["het", "hom"])
@pytest.mark.parametrize(
    "seed,builder",
    [
        (20260726, _random_pipeline_spec),
        (20260727, _random_fork_spec),
        (20260728, _random_forkjoin_spec),
    ],
    ids=["pipeline", "fork", "forkjoin"],
)
def test_engine_matches_enumeration(engine, homogeneous, seed, builder):
    rng = random.Random(seed + (1000 if homogeneous else 0))
    for _ in range(TRIALS):
        _check_instance(engine, builder(rng, homogeneous), rng)


def test_bnb_solution_is_valid_and_consistent():
    """The returned Solution re-evaluates to its reported metrics."""
    rng = random.Random(5)
    for builder in (
        _random_pipeline_spec, _random_fork_spec, _random_forkjoin_spec
    ):
        for _ in range(10):
            spec = builder(rng, False)
            sol = bnb.optimal(spec, Objective.PERIOD)
            period, latency = repro.evaluate(sol.mapping)
            assert sol.period == pytest.approx(period)
            assert sol.latency == pytest.approx(latency)
            assert sol.meta["algorithm"] == "bnb"
            assert sol.meta["nodes"] >= 1
