"""Solve budgets: anytime incumbents, determinism, guard lifting."""

from __future__ import annotations

import pytest

from repro.algorithms import brute_force, exact
from repro.algorithms.bnb import optimal as bnb_optimal
from repro.algorithms.bnb import root_lower_bound
from repro.algorithms.budget import (
    CHECK_EVERY,
    Budget,
    BudgetExhaustedError,
    BudgetMeter,
)
from repro.algorithms.problem import Objective, ProblemSpec
from repro.algorithms.registry import solve
from repro.algorithms.solve_context import SolveContext
from repro.core import FLOAT_TOL, PipelineApplication, Platform
from repro.core.exceptions import ReproError


def _pipeline(works, speeds, dp=False) -> ProblemSpec:
    return ProblemSpec(
        PipelineApplication.from_works(works),
        Platform.heterogeneous(speeds),
        allow_data_parallel=dp,
    )


HARD = _pipeline(
    [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8],       # n=12: beyond the guard
    [1, 2, 3, 2, 1, 2, 3, 1],
)
MEDIUM = _pipeline([3, 1, 4, 1, 5, 9, 2], [1, 2, 3, 2])   # enumerable, n=7
SMALL = _pipeline([14, 4, 2, 4], [2, 1, 1])


# ---------------------------------------------------------------- Budget
def test_budget_validation():
    with pytest.raises(ReproError):
        Budget(max_seconds=0.0)
    with pytest.raises(ReproError):
        Budget(max_nodes=0)
    with pytest.raises(ReproError):
        Budget(max_nodes=2.5)
    assert not Budget().is_bounded
    assert Budget(max_nodes=1).is_bounded
    assert Budget(max_seconds=0.5).is_bounded


def test_budget_from_mapping_and_roundtrip():
    assert Budget.from_mapping({}) is None
    assert Budget.from_mapping({"max_seconds": None, "max_nodes": None}) is None
    budget = Budget.from_mapping({"max_seconds": 2.0, "max_nodes": 500})
    assert budget == Budget(max_seconds=2.0, max_nodes=500)
    assert Budget.from_mapping(budget.to_dict()) == budget


def test_budget_merged_takes_per_limit_minimum():
    a = Budget(max_seconds=5.0)
    b = Budget(max_seconds=2.0, max_nodes=100)
    assert a.merged(b) == Budget(max_seconds=2.0, max_nodes=100)
    assert b.merged(a) == Budget(max_seconds=2.0, max_nodes=100)
    assert a.merged(None) is a


def test_meter_node_reason_wins_over_clock():
    clock = [0.0]
    meter = BudgetMeter(
        Budget(max_seconds=1.0, max_nodes=10), clock=lambda: clock[0]
    )
    clock[0] = 99.0  # both limits tripped
    assert meter.exhausted(10)
    assert meter.reason == "max_nodes"


def test_meter_clock_reason():
    clock = [0.0]
    meter = BudgetMeter(Budget(max_seconds=1.0), clock=lambda: clock[0])
    assert not meter.exhausted(10_000)
    clock[0] = 1.0
    assert meter.exhausted(10_000)
    assert meter.reason == "max_seconds"


# ------------------------------------------------------------- anytime bnb
def test_budgeted_bnb_returns_incumbent_with_sound_lower_bound():
    budget = Budget(max_nodes=2_000)
    solution = bnb_optimal(HARD, Objective.PERIOD, budget=budget)
    meta = solution.meta
    assert meta["status"] == "budget_exhausted"
    assert meta["budget_reason"] == "max_nodes"
    assert meta["budget"] == budget.to_dict()
    # a max_nodes stop overshoots by at most one check stride
    assert meta["nodes"] < 2_000 + CHECK_EVERY
    lower = meta["lower_bound"]
    assert lower == pytest.approx(root_lower_bound(HARD, Objective.PERIOD))
    value = solution.objective_value(Objective.PERIOD)
    assert value >= lower - FLOAT_TOL
    assert meta["gap"] == pytest.approx((value - lower) / lower)


def test_max_nodes_budget_is_deterministic():
    runs = [
        bnb_optimal(HARD, Objective.PERIOD, budget=Budget(max_nodes=1_500))
        for _ in range(2)
    ]
    assert runs[0].mapping.groups == runs[1].mapping.groups
    assert runs[0].meta["nodes"] == runs[1].meta["nodes"]
    assert runs[0].period == runs[1].period


def test_budgeted_result_identical_with_solve_context():
    budget = Budget(max_nodes=1_500)
    bare = bnb_optimal(HARD, Objective.PERIOD, budget=budget)
    context = SolveContext(HARD)
    ctx = bnb_optimal(HARD, Objective.PERIOD, context=context, budget=budget)
    assert bare.mapping.groups == ctx.mapping.groups
    assert bare.meta["nodes"] == ctx.meta["nodes"]


def test_generous_budget_is_bit_identical_to_unbudgeted():
    plain = bnb_optimal(SMALL, Objective.PERIOD)
    budgeted = bnb_optimal(SMALL, Objective.PERIOD,
                           budget=Budget(max_nodes=10_000_000))
    assert budgeted.meta["status"] == "optimal"
    assert plain.mapping.groups == budgeted.mapping.groups
    assert plain.period == budgeted.period
    assert "lower_bound" not in budgeted.meta


# -------------------------------------------------------------- enumerate
def test_budgeted_enumeration_stops_and_reports():
    solution = brute_force.optimal(
        MEDIUM, Objective.PERIOD, engine="enumerate",
        budget=Budget(max_nodes=CHECK_EVERY),
    )
    meta = solution.meta
    assert meta["status"] == "budget_exhausted"
    assert meta["nodes"] == CHECK_EVERY
    assert solution.period >= meta["lower_bound"] - FLOAT_TOL


def test_exhaustion_without_incumbent_raises():
    # thresholds no mapping can meet: the scan runs out of budget before
    # proving infeasibility, so the engine can assert neither
    with pytest.raises(BudgetExhaustedError) as info:
        brute_force.optimal(
            MEDIUM, Objective.PERIOD, engine="enumerate",
            period_bound=1e-9,
            budget=Budget(max_nodes=CHECK_EVERY),
        )
    assert info.value.reason == "max_nodes"
    assert info.value.nodes >= CHECK_EVERY


# ----------------------------------------------------------- guard lifting
def test_bounded_budget_lifts_exact_size_guard():
    with pytest.raises(ReproError, match="limited to"):
        exact.pipeline_exact(HARD, Objective.PERIOD)
    solution = exact.pipeline_exact(
        HARD, Objective.PERIOD, budget=Budget(max_nodes=2_000)
    )
    assert solution.meta["status"] == "budget_exhausted"


def test_registry_solve_threads_budget_through_exact_fallback():
    solution = solve(
        HARD, Objective.PERIOD, exact_fallback=True,
        budget=Budget(max_nodes=2_000),
    )
    assert solution.meta["status"] == "budget_exhausted"
    assert solution.meta["lower_bound"] > 0.0


def test_registry_polynomial_paths_ignore_budgets():
    hom = ProblemSpec(
        PipelineApplication.from_works([14, 4, 2, 4]),
        Platform.homogeneous(3, 1.0),
    )
    plain = solve(hom, Objective.PERIOD)
    budgeted = solve(hom, Objective.PERIOD, budget=Budget(max_nodes=1))
    assert budgeted.period == plain.period
    assert budgeted.meta.get("status") != "budget_exhausted"
