"""Tests for the Table 1 registry and the solve() façade."""

import pytest

import repro
from repro.algorithms.registry import (
    TABLE,
    Criterion,
    NPHardError,
    classify,
    solve,
)
from repro.algorithms.problem import Objective, ProblemSpec
from repro.core import ForkApplication, ForkJoinApplication, PipelineApplication, Platform


class TestTableStructure:
    def test_all_48_cells_present(self):
        assert len(TABLE) == 2 * 2 * 2 * 2 * 3

    def test_paper_statuses_spotchecks(self):
        # Thm 7: hom pipeline, het platform, no dp, period -> Poly (*)
        e = TABLE[("pipeline", True, False, False, Criterion.PERIOD)]
        assert e.is_polynomial and e.method == "*" and "7" in e.theorem
        # Thm 9: het pipeline, het platform, no dp, period -> NP-hard (**)
        e = TABLE[("pipeline", False, False, False, Criterion.PERIOD)]
        assert not e.is_polynomial and e.method == "**"
        # Thm 6: het pipeline, het platform, no dp, latency -> Poly (str)
        e = TABLE[("pipeline", False, False, False, Criterion.LATENCY)]
        assert e.is_polynomial and e.method == "str"
        # Thm 12: het fork, hom platform, latency -> NP-hard
        e = TABLE[("fork", False, True, False, Criterion.LATENCY)]
        assert not e.is_polynomial
        # Thm 14: hom fork, het platform, no dp -> Poly (*) for all
        for crit in Criterion:
            e = TABLE[("fork", True, False, False, crit)]
            assert e.is_polynomial

    def test_monotonic_hardness(self):
        """A harder instance class is never easier: if the hom-app cell is
        NP-hard, the het-app cell must be too (same other coordinates)."""
        for graph in ("pipeline", "fork"):
            for plat_hom in (True, False):
                for dp in (True, False):
                    for crit in Criterion:
                        hom_e = TABLE[(graph, True, plat_hom, dp, crit)]
                        het_e = TABLE[(graph, False, plat_hom, dp, crit)]
                        if not hom_e.is_polynomial:
                            assert not het_e.is_polynomial

    def test_describe(self):
        e = TABLE[("pipeline", True, False, False, Criterion.PERIOD)]
        assert "Poly" in e.describe()


class TestClassify:
    def test_classify_pipeline(self):
        spec = ProblemSpec(
            PipelineApplication.homogeneous(3),
            Platform.heterogeneous([1, 2]),
            allow_data_parallel=False,
        )
        assert classify(spec, Objective.PERIOD).method == "*"

    def test_forkjoin_classifies_like_fork(self):
        app = ForkJoinApplication.homogeneous(2)
        spec = ProblemSpec(app, Platform.heterogeneous([1, 2]), False)
        assert classify(spec, Objective.PERIOD).theorem == "Thm 14"


class TestSolveFacade:
    def test_np_hard_raises(self):
        spec = ProblemSpec(
            PipelineApplication.from_works([3, 1]),
            Platform.heterogeneous([1, 2]),
            allow_data_parallel=False,
        )
        with pytest.raises(NPHardError):
            solve(spec, Objective.PERIOD)

    def test_np_hard_exact_fallback(self):
        spec = ProblemSpec(
            PipelineApplication.from_works([3, 1]),
            Platform.heterogeneous([1, 2]),
            allow_data_parallel=False,
        )
        sol = solve(spec, Objective.PERIOD, exact_fallback=True)
        assert sol.period > 0

    def test_all_polynomial_cells_dispatch(self):
        """Every poly cell must route to a working solver."""
        apps = {
            ("pipeline", True): PipelineApplication.homogeneous(3, 2.0),
            ("pipeline", False): PipelineApplication.from_works([3, 1, 2]),
            ("fork", True): ForkApplication.homogeneous(3, 2.0, 1.0),
            ("fork", False): ForkApplication.from_works(2.0, [3.0, 1.0]),
        }
        platforms = {
            True: Platform.homogeneous(3, 1.0),
            False: Platform.heterogeneous([1.0, 2.0, 3.0]),
        }
        for (graph, app_hom, plat_hom, dp, crit), entry in TABLE.items():
            if not entry.is_polynomial:
                continue
            spec = ProblemSpec(
                apps[(graph, app_hom)], platforms[plat_hom], dp
            )
            if crit is Criterion.PERIOD:
                sol = solve(spec, Objective.PERIOD)
                assert sol.period > 0
            elif crit is Criterion.LATENCY:
                sol = solve(spec, Objective.LATENCY)
                assert sol.latency > 0
            else:
                base = solve(spec, Objective.PERIOD).period
                sol = solve(spec, Objective.LATENCY, period_bound=base * 2)
                assert sol.period <= base * 2 * (1 + 1e-9)

    def test_public_api_reexports(self):
        assert repro.solve is solve
        assert repro.Objective is Objective
