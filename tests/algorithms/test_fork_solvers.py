"""Tests for the fork solvers (Theorems 10, 11, 14)."""

import random

import pytest

from repro.algorithms import brute_force as bf
from repro.algorithms import fork_het_platform as fhet
from repro.algorithms import fork_hom_platform as fhom
from repro.algorithms.problem import Objective, ProblemSpec
from repro.core import (
    ForkApplication,
    InfeasibleProblemError,
    Platform,
    UnsupportedVariantError,
    validate,
)


class TestTheorem10:
    def test_capacity_bound(self):
        app = ForkApplication.from_works(2.0, [3.0, 5.0, 2.0])
        plat = Platform.homogeneous(4, 1.5)
        sol = fhom.min_period(app, plat)
        assert sol.period == pytest.approx(12.0 / 6.0)

    def test_works_for_heterogeneous_forks(self):
        app = ForkApplication.from_works(1.0, [9.0, 1.0])
        plat = Platform.homogeneous(2, 1.0)
        sol = fhom.min_period(app, plat)
        want = bf.optimal(ProblemSpec(app, plat, False), Objective.PERIOD).period
        assert sol.period == pytest.approx(want)

    def test_rejects_het_platform(self):
        app = ForkApplication.homogeneous(2)
        with pytest.raises(UnsupportedVariantError):
            fhom.min_period(app, Platform.heterogeneous([1, 2]))


class TestTheorem11:
    def test_latency_no_dp_balances_branches(self):
        # w0=1, 4 branches of 2, p=3: root keeps n0, others balance
        app = ForkApplication.homogeneous(4, 1.0, 2.0)
        plat = Platform.homogeneous(3, 1.0)
        sol = fhom.min_latency(app, plat, allow_data_parallel=False)
        want = bf.optimal(ProblemSpec(app, plat, False), Objective.LATENCY).latency
        assert sol.latency == pytest.approx(want)

    def test_latency_with_dp_beats_no_dp(self):
        app = ForkApplication.homogeneous(6, 2.0, 4.0)
        plat = Platform.homogeneous(4, 1.0)
        with_dp = fhom.min_latency(app, plat, allow_data_parallel=True)
        without = fhom.min_latency(app, plat, allow_data_parallel=False)
        assert with_dp.latency <= without.latency + 1e-9

    def test_rejects_heterogeneous_fork_for_latency(self):
        app = ForkApplication.from_works(1.0, [1.0, 5.0])
        with pytest.raises(UnsupportedVariantError):
            fhom.min_latency(app, Platform.homogeneous(2))

    @pytest.mark.parametrize("dp", [False, True])
    def test_random_cross_validation(self, dp):
        rng = random.Random(41 + dp)
        for _ in range(8):
            n, p = rng.randint(1, 4), rng.randint(1, 4)
            app = ForkApplication.homogeneous(
                n, rng.randint(1, 8), rng.randint(1, 5)
            )
            plat = Platform.homogeneous(p, rng.choice([1.0, 2.0]))
            spec = ProblemSpec(app, plat, dp)
            assert fhom.min_latency(app, plat, dp).latency == pytest.approx(
                bf.optimal(spec, Objective.LATENCY).latency
            )
            K = bf.optimal(spec, Objective.PERIOD).period * (1.0 + rng.random())
            want = bf.optimal(spec, Objective.LATENCY, period_bound=K).latency
            sol = fhom.min_latency_given_period(app, plat, K, dp)
            assert sol.latency == pytest.approx(want)
            assert sol.period <= K * (1 + 1e-9)
            L = bf.optimal(spec, Objective.LATENCY).latency * (1.0 + rng.random())
            want = bf.optimal(spec, Objective.PERIOD, latency_bound=L).period
            assert fhom.min_period_given_latency(
                app, plat, L, dp
            ).period == pytest.approx(want)

    def test_infeasible_period_bound(self):
        app = ForkApplication.homogeneous(2, 5.0, 5.0)
        plat = Platform.homogeneous(2, 1.0)
        with pytest.raises(InfeasibleProblemError):
            fhom.min_latency_given_period(app, plat, 0.5, False)


class TestTheorem14:
    def test_period_uses_all_capacity_when_possible(self):
        app = ForkApplication.homogeneous(4, 2.0, 3.0)
        plat = Platform.heterogeneous([1.0, 2.0, 4.0])
        sol = fhet.min_period_homogeneous(app, plat)
        want = bf.optimal(ProblemSpec(app, plat, False), Objective.PERIOD).period
        assert sol.period == pytest.approx(want)
        validate(sol.mapping, allow_data_parallel=False)

    def test_latency_known_case(self):
        # root on the fastest processor is not always optimal: check vs bf
        app = ForkApplication.homogeneous(3, 6.0, 2.0)
        plat = Platform.heterogeneous([1.0, 3.0])
        sol = fhet.min_latency_homogeneous(app, plat)
        want = bf.optimal(ProblemSpec(app, plat, False), Objective.LATENCY).latency
        assert sol.latency == pytest.approx(want)

    def test_rejects_heterogeneous_fork(self):
        app = ForkApplication.from_works(1.0, [1.0, 5.0])
        with pytest.raises(UnsupportedVariantError):
            fhet.min_period_homogeneous(app, Platform.heterogeneous([1, 2]))

    def test_random_cross_validation_all_objectives(self):
        rng = random.Random(53)
        for _ in range(8):
            n, p = rng.randint(1, 4), rng.randint(1, 4)
            app = ForkApplication.homogeneous(
                n, rng.randint(1, 8), rng.randint(1, 5)
            )
            plat = Platform.heterogeneous([rng.randint(1, 5) for _ in range(p)])
            spec = ProblemSpec(app, plat, False)
            assert fhet.min_period_homogeneous(app, plat).period == pytest.approx(
                bf.optimal(spec, Objective.PERIOD).period
            )
            assert fhet.min_latency_homogeneous(app, plat).latency == pytest.approx(
                bf.optimal(spec, Objective.LATENCY).latency
            )
            K = bf.optimal(spec, Objective.PERIOD).period * (1.0 + rng.random())
            want = bf.optimal(spec, Objective.LATENCY, period_bound=K).latency
            got = fhet.min_latency_given_period_homogeneous(app, plat, K)
            assert got.latency == pytest.approx(want)
            assert got.period <= K * (1 + 1e-9)
            L = bf.optimal(spec, Objective.LATENCY).latency * (1.0 + rng.random())
            want = bf.optimal(spec, Objective.PERIOD, latency_bound=L).period
            got = fhet.min_period_given_latency_homogeneous(app, plat, L)
            assert got.period == pytest.approx(want)

    def test_single_processor(self):
        app = ForkApplication.homogeneous(3, 1.0, 2.0)
        plat = Platform.heterogeneous([2.0])
        sol = fhet.min_period_homogeneous(app, plat)
        assert sol.period == pytest.approx(7.0 / 2.0)
        assert sol.latency == pytest.approx(7.0 / 2.0)

    def test_infeasible_latency_bound(self):
        app = ForkApplication.homogeneous(2, 4.0, 4.0)
        plat = Platform.heterogeneous([1.0, 1.0])
        with pytest.raises(InfeasibleProblemError):
            fhet.min_period_given_latency_homogeneous(app, plat, 1.0)
