"""Tests for the fork-join extensions (Section 6.3)."""

import random

import pytest

from repro.algorithms import brute_force as bf
from repro.algorithms import forkjoin as fj
from repro.algorithms.problem import Objective, ProblemSpec
from repro.core import (
    ForkJoinApplication,
    Platform,
    UnsupportedVariantError,
    validate,
)


class TestHomPlatform:
    def test_min_period_replicate_all(self):
        app = ForkJoinApplication.from_works(1.0, [2.0, 3.0], 4.0)
        plat = Platform.homogeneous(3, 2.0)
        sol = fj.min_period_hom_platform(app, plat)
        assert sol.period == pytest.approx(10.0 / 6.0)

    def test_latency_join_placement_matters(self):
        # join heavy: placing branches with root frees a processor for join
        app = ForkJoinApplication.homogeneous(2, 1.0, 1.0, 8.0)
        plat = Platform.homogeneous(3, 1.0)
        sol = fj.solve_hom_platform(
            app, plat, Objective.LATENCY, allow_data_parallel=True
        )
        want = bf.optimal(ProblemSpec(app, plat, True), Objective.LATENCY).latency
        assert sol.latency == pytest.approx(want)

    @pytest.mark.parametrize("dp", [False, True])
    def test_random_cross_validation(self, dp):
        rng = random.Random(61 + dp)
        for _ in range(6):
            n, p = rng.randint(1, 3), rng.randint(1, 4)
            app = ForkJoinApplication.homogeneous(
                n, rng.randint(1, 6), rng.randint(1, 4), rng.randint(1, 6)
            )
            plat = Platform.homogeneous(p, 1.0)
            spec = ProblemSpec(app, plat, dp)
            got = fj.solve_hom_platform(
                app, plat, Objective.LATENCY, allow_data_parallel=dp
            )
            want = bf.optimal(spec, Objective.LATENCY).latency
            assert got.latency == pytest.approx(want)
            validate(got.mapping, allow_data_parallel=dp)
            K = bf.optimal(spec, Objective.PERIOD).period * (1.0 + rng.random())
            want = bf.optimal(spec, Objective.LATENCY, period_bound=K).latency
            got = fj.solve_hom_platform(
                app, plat, Objective.LATENCY, period_bound=K,
                allow_data_parallel=dp,
            )
            assert got.latency == pytest.approx(want)
            # converse bi-criteria
            L = bf.optimal(spec, Objective.LATENCY).latency * (1.0 + rng.random())
            want = bf.optimal(spec, Objective.PERIOD, latency_bound=L).period
            got = fj.solve_hom_platform(
                app, plat, Objective.PERIOD, latency_bound=L,
                allow_data_parallel=dp,
            )
            assert got.period == pytest.approx(want)

    def test_rejects_het_platform(self):
        app = ForkJoinApplication.homogeneous(2)
        with pytest.raises(UnsupportedVariantError):
            fj.min_period_hom_platform(app, Platform.heterogeneous([1, 2]))


class TestHetPlatform:
    def test_period_known_case(self):
        app = ForkJoinApplication.homogeneous(3, 2.0, 3.0, 2.0)
        plat = Platform.heterogeneous([1.0, 2.0, 4.0])
        sol = fj.solve_het_platform(app, plat, Objective.PERIOD)
        want = bf.optimal(ProblemSpec(app, plat, False), Objective.PERIOD).period
        assert sol.period == pytest.approx(want)
        validate(sol.mapping, allow_data_parallel=False)

    def test_random_cross_validation(self):
        rng = random.Random(71)
        for _ in range(6):
            n, p = rng.randint(1, 3), rng.randint(1, 3)
            app = ForkJoinApplication.homogeneous(
                n, rng.randint(1, 5), rng.randint(1, 4), rng.randint(1, 5)
            )
            plat = Platform.heterogeneous([rng.randint(1, 4) for _ in range(p)])
            spec = ProblemSpec(app, plat, False)
            got = fj.solve_het_platform(app, plat, Objective.PERIOD)
            assert got.period == pytest.approx(
                bf.optimal(spec, Objective.PERIOD).period
            )
            got = fj.solve_het_platform(app, plat, Objective.LATENCY)
            assert got.latency == pytest.approx(
                bf.optimal(spec, Objective.LATENCY).latency
            )
            K = bf.optimal(spec, Objective.PERIOD).period * (1.0 + rng.random())
            want = bf.optimal(spec, Objective.LATENCY, period_bound=K).latency
            got = fj.solve_het_platform(
                app, plat, Objective.LATENCY, period_bound=K
            )
            assert got.latency == pytest.approx(want)

    def test_rejects_heterogeneous_forkjoin(self):
        app = ForkJoinApplication.from_works(1.0, [1.0, 7.0], 1.0)
        with pytest.raises(UnsupportedVariantError):
            fj.solve_het_platform(
                app, Platform.heterogeneous([1, 2]), Objective.PERIOD
            )
