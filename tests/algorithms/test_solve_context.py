"""Sweep memoization correctness: SolveContext reuse is behaviour-free.

The contract under test: solving a bi-criteria threshold sweep through
one shared :class:`SolveContext` returns *bit-identical* solutions —
values and mappings — to solving every point cold, for both exact
engines, and a context never leaks state across instances (interleaved
sweeps over two instances stay independent).
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.algorithms import brute_force as bf
from repro.algorithms import pipeline_het_platform
from repro.algorithms.problem import Objective, ProblemSpec
from repro.algorithms.solve_context import ContextCache, SolveContext
from repro.analysis.pareto import threshold_grid
from repro.core.costs import FLOAT_TOL
from repro.core.exceptions import InfeasibleProblemError, ReproError
from repro.serialization import mapping_to_dict


def _random_spec(rng: random.Random, shapes=("pipeline", "fork", "forkjoin")):
    n = rng.randint(2, 4)
    p = rng.randint(3, 4)
    shape = rng.choice(shapes)
    works = [rng.randint(1, 9) for _ in range(n)]
    if shape == "fork":
        app = repro.ForkApplication.from_works(rng.randint(1, 5), works)
    elif shape == "forkjoin":
        app = repro.ForkJoinApplication.from_works(
            rng.randint(1, 5), works, rng.randint(1, 5)
        )
    else:
        app = repro.PipelineApplication.from_works(works)
    platform = repro.Platform.heterogeneous(
        [rng.randint(1, 6) for _ in range(p)]
    )
    return ProblemSpec(app, platform, rng.random() < 0.3)


def _solve_key(solution):
    """Everything that must not change under context reuse."""
    return (
        solution.period,
        solution.latency,
        mapping_to_dict(solution.mapping),
    )


def _sweep(spec, engine, context=None, points=5):
    """The pareto-style sweep: extremes, then latency-under-period-cap."""
    out = []
    lo = bf.optimal(spec, Objective.PERIOD, engine=engine, context=context)
    hi = bf.optimal(spec, Objective.LATENCY, engine=engine, context=context)
    out.append(_solve_key(lo))
    out.append(_solve_key(hi))
    grid = threshold_grid(lo.period, max(hi.period, lo.period), points)
    for bound in grid:
        try:
            sol = bf.optimal(
                spec, Objective.LATENCY,
                period_bound=bound * (1 + FLOAT_TOL),
                engine=engine, context=context,
            )
            out.append(_solve_key(sol))
        except InfeasibleProblemError:
            out.append("infeasible")
    return out


@pytest.mark.parametrize("engine", ["bnb", "enumerate"])
def test_memoized_sweep_bit_identical_to_cold_solves(engine):
    """>= 50 random instances: one-context sweeps == per-point cold sweeps."""
    rng = random.Random(20070926)
    for _ in range(50):
        spec = _random_spec(rng)
        context = SolveContext(spec)
        memoized = _sweep(spec, engine, context=context)
        cold = _sweep(spec, engine, context=None)
        assert memoized == cold, spec.describe()


def test_interleaved_contexts_do_not_leak_state():
    """Two instances swept alternately through two live contexts."""
    rng = random.Random(31337)
    for _ in range(10):
        spec_a = _random_spec(rng)
        spec_b = _random_spec(rng)
        ctx_a, ctx_b = SolveContext(spec_a), SolveContext(spec_b)
        interleaved_a, interleaved_b = [], []
        for objective in (Objective.PERIOD, Objective.LATENCY):
            sol_a = bf.optimal(spec_a, objective, context=ctx_a)
            sol_b = bf.optimal(spec_b, objective, context=ctx_b)
            interleaved_a.append(_solve_key(sol_a))
            interleaved_b.append(_solve_key(sol_b))
            for scale in (1.2, 1.7):
                bound_a = sol_a.period * scale
                bound_b = sol_b.period * scale
                interleaved_a.append(_solve_key(bf.optimal(
                    spec_a, Objective.LATENCY, period_bound=bound_a,
                    context=ctx_a,
                )))
                interleaved_b.append(_solve_key(bf.optimal(
                    spec_b, Objective.LATENCY, period_bound=bound_b,
                    context=ctx_b,
                )))
        # replay each instance cold, in the same solve order
        for spec, got in ((spec_a, interleaved_a), (spec_b, interleaved_b)):
            cold = []
            for objective in (Objective.PERIOD, Objective.LATENCY):
                sol = bf.optimal(spec, objective)
                cold.append(_solve_key(sol))
                for scale in (1.2, 1.7):
                    cold.append(_solve_key(bf.optimal(
                        spec, Objective.LATENCY,
                        period_bound=sol.period * scale,
                    )))
            assert got == cold, spec.describe()


def test_context_rejects_foreign_instance():
    rng = random.Random(7)
    spec_a = _random_spec(rng, shapes=("pipeline",))
    spec_b = ProblemSpec(
        repro.PipelineApplication.from_works([5, 4, 3]),
        repro.Platform.heterogeneous([3, 1]),
        False,
    )
    context = SolveContext(spec_a)
    with pytest.raises(ReproError, match="mismatch"):
        bf.optimal(spec_b, Objective.PERIOD, context=context)
    with pytest.raises(ReproError, match="mismatch"):
        repro.solve(spec_b, Objective.PERIOD, context=context)


def test_context_accepts_equal_content_spec():
    """A re-parsed spec with identical content shares the context."""
    app = repro.PipelineApplication.from_works([4, 2, 7])
    twin_a = ProblemSpec(app, repro.Platform.heterogeneous([2, 1, 3]), False)
    twin_b = ProblemSpec(
        repro.PipelineApplication.from_works([4, 2, 7]),
        repro.Platform.heterogeneous([2, 1, 3]),
        False,
    )
    context = SolveContext(twin_a)
    sol_a = bf.optimal(twin_a, Objective.PERIOD, context=context)
    sol_b = bf.optimal(twin_b, Objective.PERIOD, context=context)
    assert _solve_key(sol_a) == _solve_key(sol_b)


def test_thm8_dp_memo_matches_cold_sweep():
    """Hom pipeline / het platform (Theorem 8): memoized DP == cold DP."""
    app = repro.PipelineApplication.from_works([3.0] * 6)
    platform = repro.Platform.heterogeneous([1, 2, 2, 5])
    spec = ProblemSpec(app, platform, False)
    lo = repro.solve(spec, Objective.PERIOD)
    hi = repro.solve(spec, Objective.LATENCY)
    grid = threshold_grid(lo.period, max(hi.period, lo.period), 9)
    context = SolveContext(spec)
    for bound in grid:
        memoized = pipeline_het_platform.min_latency_given_period_homogeneous(
            app, platform, bound, context=context
        )
        cold = pipeline_het_platform.min_latency_given_period_homogeneous(
            app, platform, bound
        )
        assert _solve_key(memoized) == _solve_key(cold)
        converse = pipeline_het_platform.min_period_given_latency_homogeneous(
            app, platform, memoized.latency, context=context
        )
        cold_converse = pipeline_het_platform.min_period_given_latency_homogeneous(
            app, platform, memoized.latency
        )
        assert _solve_key(converse) == _solve_key(cold_converse)
    # the sweep hit the memo: far fewer DP tables than solve calls
    assert len(context.table("thm8-latency-dp")) <= 2 * len(grid)


def test_context_cache_keys_by_content_and_evicts():
    from repro.serialization import spec_to_dict

    rng = random.Random(11)
    specs = [_random_spec(rng, shapes=("pipeline",)) for _ in range(3)]
    cache = ContextCache(max_entries=2)
    ctx0 = cache.for_document(spec_to_dict(specs[0]))
    assert cache.for_document(spec_to_dict(specs[0])) is ctx0
    cache.for_document(spec_to_dict(specs[1]))
    cache.for_document(spec_to_dict(specs[2]))  # evicts the oldest
    assert len(cache) == 2
    assert cache.for_document(spec_to_dict(specs[0])) is not ctx0
    with pytest.raises(ReproError):
        ContextCache(max_entries=0)


def test_runner_context_cache_rows_identical():
    """execute_tasks rows are identical with and without shared contexts."""
    from repro.campaign.runner import execute_tasks, strip_volatile
    from repro.campaign.spec import Task
    from repro.serialization import spec_to_dict

    rng = random.Random(5)
    spec = _random_spec(rng, shapes=("pipeline",))
    instance = spec_to_dict(spec)
    solver = {"name": "x", "mode": "exact", "engine": "bnb"}
    lo = bf.optimal(spec, Objective.PERIOD)
    tasks = [
        Task(index=i, instance_id="t", instance=instance,
             objective="latency", period_bound=lo.period * (1.1 + 0.2 * i),
             latency_bound=None, solver=solver)
        for i in range(6)
    ]
    shared = [strip_volatile(r)
              for r in execute_tasks(tasks, context_cache=ContextCache())]
    # defeat sharing entirely: one fresh execute_tasks call per task
    isolated = [
        strip_volatile(execute_tasks([task])[0]) for task in tasks
    ]
    assert shared == isolated


def test_pareto_front_context_sweep_matches_isolated_points():
    """pareto_front (context-shared) == the same front from cold solves."""
    from repro.analysis.pareto import non_dominated, pareto_front

    rng = random.Random(99)
    spec = _random_spec(rng, shapes=("pipeline",))
    front = pareto_front(spec, num_points=6, exact_fallback=True)
    # rebuild the candidate set cold, point by point, through the same
    # dispatch pareto_front's tasks use (fresh context every call)
    lo = repro.solve(spec, Objective.PERIOD, exact_fallback=True)
    hi = repro.solve(spec, Objective.LATENCY, exact_fallback=True)
    candidates = [lo, hi]
    for bound in threshold_grid(lo.period, max(hi.period, lo.period), 6):
        try:
            candidates.append(repro.solve(
                spec, Objective.LATENCY,
                period_bound=bound * (1 + FLOAT_TOL),
                exact_fallback=True,
            ))
        except InfeasibleProblemError:
            continue
    expected = non_dominated(candidates)
    assert [_solve_key(s) for s in front] == [_solve_key(s) for s in expected]
