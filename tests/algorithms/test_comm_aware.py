"""Tests for the communication-aware interval-mapping algorithms."""

import itertools
import random

import pytest

import repro
from repro.algorithms.comm_aware import (
    min_latency_comm,
    min_latency_given_period_comm,
    min_period_comm,
    min_period_given_latency_comm,
)
from repro.core import (
    CommunicationModel,
    InfeasibleProblemError,
    InvalidPlatformError,
    OnePortInterval,
    UnsupportedVariantError,
    pipeline_latency_with_comm,
    pipeline_period_with_comm,
)

STRICT = CommunicationModel.ONE_PORT_STRICT
OVERLAP = CommunicationModel.MULTI_PORT_OVERLAP


def random_comm_app(rng, n):
    works = [rng.randint(1, 9) for _ in range(n)]
    sizes = [rng.randint(0, 6) for _ in range(n + 1)]
    return repro.PipelineApplication.from_works(works, data_sizes=sizes)


def brute_force_comm(app, platform, model, objective, period_bound=None):
    """Reference: enumerate all interval partitions (procs identical)."""
    n, p = app.n, platform.p
    best = float("inf")
    for q in range(1, min(n, p) + 1):
        for cuts in itertools.combinations(range(1, n), q - 1):
            bounds = [0, *cuts, n]
            intervals = [
                OnePortInterval(start=bounds[t] + 1, end=bounds[t + 1],
                                processor=t)
                for t in range(q)
            ]
            period = pipeline_period_with_comm(app, platform, intervals, model)
            latency = pipeline_latency_with_comm(app, platform, intervals, model)
            if period_bound is not None and period > period_bound * (1 + 1e-9):
                continue
            value = period if objective == "period" else latency
            best = min(best, value)
    return best


class TestMinPeriod:
    @pytest.mark.parametrize("model", [STRICT, OVERLAP])
    def test_matches_brute_force(self, model):
        rng = random.Random(46)
        for _ in range(12):
            n, p = rng.randint(1, 7), rng.randint(1, 5)
            app = random_comm_app(rng, n)
            plat = repro.Platform.homogeneous(
                p, speed=rng.choice([1.0, 2.0]),
                bandwidth=rng.choice([1.0, 4.0]),
            )
            want = brute_force_comm(app, plat, model, "period")
            got = min_period_comm(app, plat, model)
            assert got.period == pytest.approx(want)

    def test_zero_sizes_reduce_to_chains_to_chains(self):
        from repro.chains import chains_to_chains_dp

        rng = random.Random(47)
        for _ in range(8):
            n, p = rng.randint(1, 8), rng.randint(1, 5)
            works = [float(rng.randint(1, 9)) for _ in range(n)]
            app = repro.PipelineApplication.from_works(works)
            plat = repro.Platform.homogeneous(p, 1.0, bandwidth=1.0)
            got = min_period_comm(app, plat).period
            want = chains_to_chains_dp(works, p).bottleneck
            assert got == pytest.approx(want)

    def test_communication_shifts_the_optimum(self):
        # heavy transfer between S1 and S2: splitting there is bad
        app = repro.PipelineApplication.from_works(
            [4.0, 4.0], data_sizes=[0.0, 100.0, 0.0]
        )
        slow_net = repro.Platform.homogeneous(2, 1.0, bandwidth=1.0)
        fast_net = repro.Platform.homogeneous(2, 1.0, bandwidth=1000.0)
        assert len(min_period_comm(app, slow_net).intervals) == 1
        assert len(min_period_comm(app, fast_net).intervals) == 2


class TestMinLatency:
    def test_single_interval_is_optimal(self):
        rng = random.Random(48)
        for _ in range(8):
            app = random_comm_app(rng, rng.randint(1, 6))
            plat = repro.Platform.homogeneous(3, 1.0, bandwidth=2.0)
            got = min_latency_comm(app, plat)
            want = brute_force_comm(app, plat, STRICT, "latency")
            assert got.latency == pytest.approx(want)
            assert len(got.intervals) == 1


class TestBicriteria:
    @pytest.mark.parametrize("model", [STRICT, OVERLAP])
    def test_latency_under_period_matches_brute_force(self, model):
        rng = random.Random(49)
        for _ in range(10):
            n, p = rng.randint(1, 7), rng.randint(1, 4)
            app = random_comm_app(rng, n)
            plat = repro.Platform.homogeneous(p, 1.0, bandwidth=2.0)
            base = min_period_comm(app, plat, model).period
            bound = base * (1 + rng.random())
            want = brute_force_comm(app, plat, model, "latency", bound)
            got = min_latency_given_period_comm(app, plat, bound, model)
            assert got.latency == pytest.approx(want)
            assert got.period <= bound * (1 + 1e-9)

    def test_infeasible_bound(self):
        app = repro.PipelineApplication.from_works([10.0])
        plat = repro.Platform.homogeneous(1, 1.0, bandwidth=1.0)
        with pytest.raises(InfeasibleProblemError):
            min_latency_given_period_comm(app, plat, 1.0)

    def test_converse_direction(self):
        rng = random.Random(50)
        for _ in range(6):
            n, p = rng.randint(1, 6), rng.randint(1, 4)
            app = random_comm_app(rng, n)
            plat = repro.Platform.homogeneous(p, 1.0, bandwidth=2.0)
            loose_latency = min_latency_comm(app, plat).latency * 2.0
            sol = min_period_given_latency_comm(app, plat, loose_latency)
            assert sol.latency <= loose_latency * (1 + 1e-9)
            # with a latency budget this loose, the unconstrained period
            # optimum may or may not fit; the result must dominate nothing
            assert sol.period >= min_period_comm(app, plat).period - 1e-9


class TestGuards:
    def test_requires_homogeneous_platform(self):
        app = repro.PipelineApplication.from_works([1.0, 2.0])
        plat = repro.Platform.heterogeneous([1.0, 2.0])
        with pytest.raises(UnsupportedVariantError):
            min_period_comm(app, plat)

    def test_requires_interconnect(self):
        app = repro.PipelineApplication.from_works([1.0, 2.0])
        plat = repro.Platform.homogeneous(2, 1.0)
        with pytest.raises(InvalidPlatformError):
            min_period_comm(app, plat)
