"""Tests for the pipeline solvers (Theorems 1-4 and 6-8).

Fixed known-answer cases (including the Section 2 example) plus randomized
cross-validation against exhaustive search.
"""

import random

import pytest

from repro.algorithms import brute_force as bf
from repro.algorithms import pipeline_het_platform as het
from repro.algorithms import pipeline_hom_platform as hom
from repro.algorithms.problem import Objective, ProblemSpec
from repro.core import (
    InfeasibleProblemError,
    PipelineApplication,
    Platform,
    UnsupportedVariantError,
    validate,
)

S2 = PipelineApplication.from_works([14, 4, 2, 4])


class TestTheorem1:
    def test_matches_capacity_bound(self):
        plat = Platform.homogeneous(3, 2.0)
        sol = hom.min_period(S2, plat)
        assert sol.period == pytest.approx(24.0 / 6.0)

    def test_section2_value(self):
        sol = hom.min_period(S2, Platform.homogeneous(3, 1.0))
        assert sol.period == pytest.approx(8.0)

    def test_rejects_het_platform(self):
        with pytest.raises(UnsupportedVariantError):
            hom.min_period(S2, Platform.heterogeneous([1, 2]))


class TestTheorems2To4:
    def test_latency_no_dp_is_total_over_speed(self):
        sol = hom.min_latency_no_dp(S2, Platform.homogeneous(3, 2.0))
        assert sol.latency == pytest.approx(12.0)

    def test_bicriteria_no_dp_optimal_both(self):
        sol = hom.min_bicriteria_no_dp(S2, Platform.homogeneous(3, 1.0))
        assert sol.period == pytest.approx(8.0)
        assert sol.latency == pytest.approx(24.0)

    def test_thm3_section2_latency_17(self):
        sol = hom.min_latency_with_dp(S2, Platform.homogeneous(3, 1.0))
        assert sol.latency == pytest.approx(17.0)
        validate(sol.mapping, allow_data_parallel=True)

    def test_thm3_single_stage_uses_everyone(self):
        app = PipelineApplication.from_works([12])
        sol = hom.min_latency_with_dp(app, Platform.homogeneous(4, 1.0))
        assert sol.latency == pytest.approx(3.0)

    def test_thm4_latency_under_period_bound(self):
        plat = Platform.homogeneous(3, 1.0)
        # with period <= 10 the best latency (with dp) is 17 (section 2)
        sol = hom.min_latency_given_period(S2, plat, 10.0)
        assert sol.latency == pytest.approx(17.0)
        assert sol.period <= 10.0 + 1e-9

    def test_thm4_infeasible_bound(self):
        with pytest.raises(InfeasibleProblemError):
            hom.min_latency_given_period(S2, Platform.homogeneous(2, 1.0), 1.0)

    def test_thm4_converse(self):
        plat = Platform.homogeneous(3, 1.0)
        sol = hom.min_period_given_latency(S2, plat, 24.0)
        assert sol.period == pytest.approx(8.0)

    def test_pareto_front_monotone(self):
        plat = Platform.homogeneous(4, 1.0)
        front = hom.pareto_front(S2, plat)
        assert front
        for a, b in zip(front, front[1:]):
            assert a.period < b.period + 1e-12
            assert a.latency > b.latency - 1e-12

    @pytest.mark.parametrize("dp", [False, True])
    def test_random_cross_validation(self, dp):
        rng = random.Random(11 + dp)
        for _ in range(8):
            n, p = rng.randint(1, 5), rng.randint(1, 5)
            app = PipelineApplication.from_works(
                [rng.randint(1, 9) for _ in range(n)]
            )
            plat = Platform.homogeneous(p, rng.choice([1.0, 2.0]))
            spec = ProblemSpec(app, plat, dp)
            assert hom.min_period(app, plat, dp).period == pytest.approx(
                bf.optimal(spec, Objective.PERIOD).period
            )
            want = bf.optimal(spec, Objective.LATENCY).latency
            got = (
                hom.min_latency_with_dp(app, plat).latency
                if dp
                else hom.min_latency_no_dp(app, plat).latency
            )
            assert got == pytest.approx(want)
            bound = bf.optimal(spec, Objective.PERIOD).period * (
                1.0 + rng.random()
            )
            want = bf.optimal(spec, Objective.LATENCY, period_bound=bound).latency
            got = hom.min_latency_given_period(app, plat, bound, dp).latency
            assert got == pytest.approx(want)


class TestTheorem6:
    def test_fastest_processor(self):
        plat = Platform.heterogeneous([1.0, 3.0, 2.0])
        sol = het.min_latency_no_dp(S2, plat)
        assert sol.latency == pytest.approx(8.0)
        assert sol.mapping.groups[0].processors == (1,)


class TestTheorem7:
    def test_known_case(self):
        # 4 identical stages of work 2; speeds (1, 1, 2):
        app = PipelineApplication.homogeneous(4, 2.0)
        plat = Platform.heterogeneous([1.0, 1.0, 2.0])
        sol = het.min_period_homogeneous(app, plat)
        want = bf.optimal(
            ProblemSpec(app, plat, False), Objective.PERIOD
        ).period
        assert sol.period == pytest.approx(want)

    def test_rejects_heterogeneous_app(self):
        with pytest.raises(UnsupportedVariantError):
            het.min_period_homogeneous(S2, Platform.heterogeneous([1, 2]))

    def test_random_cross_validation(self):
        rng = random.Random(23)
        for _ in range(10):
            n, p = rng.randint(1, 5), rng.randint(1, 5)
            app = PipelineApplication.homogeneous(n, rng.randint(1, 5))
            plat = Platform.heterogeneous(
                [rng.randint(1, 5) for _ in range(p)]
            )
            spec = ProblemSpec(app, plat, False)
            want = bf.optimal(spec, Objective.PERIOD).period
            sol = het.min_period_homogeneous(app, plat)
            assert sol.period == pytest.approx(want)
            validate(sol.mapping, allow_data_parallel=False)


class TestTheorem8:
    def test_latency_under_loose_period_is_thm6(self):
        app = PipelineApplication.homogeneous(4, 2.0)
        plat = Platform.heterogeneous([1.0, 2.0, 4.0])
        loose = het.min_latency_given_period_homogeneous(app, plat, 1e9)
        assert loose.latency == pytest.approx(
            het.min_latency_no_dp(app, plat).latency
        )

    def test_tradeoff_direction(self):
        app = PipelineApplication.homogeneous(6, 3.0)
        plat = Platform.heterogeneous([1.0, 1.0, 2.0, 3.0])
        tight = het.min_period_homogeneous(app, plat)
        sol_tight = het.min_latency_given_period_homogeneous(
            app, plat, tight.period
        )
        sol_loose = het.min_latency_given_period_homogeneous(
            app, plat, tight.period * 4
        )
        assert sol_loose.latency <= sol_tight.latency + 1e-9

    def test_infeasible_bound(self):
        app = PipelineApplication.homogeneous(3, 5.0)
        plat = Platform.heterogeneous([1.0, 1.0])
        with pytest.raises(InfeasibleProblemError):
            het.min_latency_given_period_homogeneous(app, plat, 0.1)

    def test_converse_random_cross_validation(self):
        rng = random.Random(31)
        for _ in range(8):
            n, p = rng.randint(1, 4), rng.randint(1, 4)
            app = PipelineApplication.homogeneous(n, rng.randint(1, 4))
            plat = Platform.heterogeneous(
                [rng.randint(1, 4) for _ in range(p)]
            )
            spec = ProblemSpec(app, plat, False)
            L = bf.optimal(spec, Objective.LATENCY).latency * (
                1.0 + rng.random()
            )
            want = bf.optimal(spec, Objective.PERIOD, latency_bound=L).period
            got = het.min_period_given_latency_homogeneous(app, plat, L).period
            assert got == pytest.approx(want)

    def test_bicriteria_random_cross_validation(self):
        rng = random.Random(37)
        for _ in range(8):
            n, p = rng.randint(1, 4), rng.randint(1, 4)
            app = PipelineApplication.homogeneous(n, rng.randint(1, 4))
            plat = Platform.heterogeneous(
                [rng.randint(1, 4) for _ in range(p)]
            )
            spec = ProblemSpec(app, plat, False)
            K = bf.optimal(spec, Objective.PERIOD).period * (1.0 + rng.random())
            want = bf.optimal(spec, Objective.LATENCY, period_bound=K).latency
            got = het.min_latency_given_period_homogeneous(app, plat, K).latency
            assert got == pytest.approx(want)
