"""Tests for reporting, Pareto fronts and Table 1 regeneration."""

import random

import pytest

import repro
from repro.analysis import (
    format_table,
    non_dominated,
    pareto_front,
    render_table1,
    threshold_grid,
)
from repro.analysis.table1 import regenerate_table1, validate_cell
from repro.algorithms.problem import Solution
from repro.algorithms.registry import Criterion


def assert_no_dominated_pairs(points):
    for i, (p1, l1) in enumerate(points):
        for j, (p2, l2) in enumerate(points):
            if i == j:
                continue
            assert not (p2 <= p1 + 1e-12 and l2 <= l1 + 1e-12
                        and (p2 < p1 - 1e-9 or l2 < l1 - 1e-9)), \
                f"({p1}, {l1}) is dominated by ({p2}, {l2})"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["x", "y"], ["longer", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[2:])

    def test_title(self):
        text = format_table(["a"], [["1"]], title="T")
        assert text.splitlines()[0] == "T"


class TestPareto:
    def test_front_monotone_hom_pipeline(self):
        app = repro.PipelineApplication.from_works([14, 4, 2, 4])
        plat = repro.Platform.homogeneous(4, 1.0)
        spec = repro.ProblemSpec(app, plat, allow_data_parallel=True)
        front = pareto_front(spec, num_points=16)
        assert front
        for a, b in zip(front, front[1:]):
            assert a.period <= b.period + 1e-9
            assert a.latency >= b.latency - 1e-9

    def test_front_endpoints(self):
        app = repro.ForkApplication.homogeneous(4, 2.0, 3.0)
        plat = repro.Platform.heterogeneous([1.0, 2.0, 3.0])
        spec = repro.ProblemSpec(app, plat, allow_data_parallel=False)
        front = pareto_front(spec, num_points=12)
        best_period = repro.solve(spec, repro.Objective.PERIOD).period
        best_latency = repro.solve(spec, repro.Objective.LATENCY).latency
        assert front[0].period == pytest.approx(best_period)
        assert front[-1].latency == pytest.approx(best_latency)

    def _np_hard_spec(self):
        # het pipeline on het platform, no DP: period is NP-hard (Thm 9)
        return repro.ProblemSpec(
            repro.PipelineApplication.from_works([9, 2, 7]),
            repro.Platform.heterogeneous([3, 1]),
        )

    def test_np_hard_without_fallback_raises(self):
        with pytest.raises(repro.NPHardError):
            pareto_front(self._np_hard_spec(), num_points=4)

    def test_engine_knob_fronts_agree(self):
        spec = self._np_hard_spec()
        bnb = pareto_front(spec, num_points=6, exact_fallback=True)
        enum = pareto_front(spec, num_points=6, exact_fallback=True,
                            engine="enumerate")
        assert [(s.period, s.latency) for s in bnb] == \
            [(s.period, s.latency) for s in enum]

    def test_cache_and_workers_reproduce_serial_front(self, tmp_path):
        from repro.campaign import ResultCache

        app = repro.PipelineApplication.from_works([14, 4, 2, 4])
        spec = repro.ProblemSpec(
            app, repro.Platform.homogeneous(4, 1.0), allow_data_parallel=True
        )
        plain = pareto_front(spec, num_points=10)
        cache = ResultCache(tmp_path)
        parallel = pareto_front(spec, num_points=10, cache=cache, workers=2)
        cached = pareto_front(spec, num_points=10, cache=cache)
        points = [(s.period, s.latency) for s in plain]
        assert [(s.period, s.latency) for s in parallel] == points
        assert [(s.period, s.latency) for s in cached] == points
        # the second traversal came entirely from the cache
        assert cache.hits >= 12


class TestThresholdGrid:
    def test_endpoints_exact_and_monotone(self):
        grid = threshold_grid(1.0, 1e12, 64)
        assert len(grid) == 64
        assert grid[0] == 1.0
        assert grid[-1] == 1e12  # pinned exactly, never ratio**(n-1)
        assert all(a < b for a, b in zip(grid, grid[1:]))

    @pytest.mark.parametrize("k_min,k_max,n", [
        (1.0, 1e12, 64),        # accumulation undershoots k_max here
        (3.7e-8, 9.1e11, 128),  # ... and overshoots here
        (2.0, 7.0, 33),
        (1e-9, 1e9, 7),
    ])
    def test_extreme_ratios_hit_k_max(self, k_min, k_max, n):
        # regression: `value *= ratio` accumulated float error over
        # num_points multiplies, so the last threshold drifted off k_max
        # and the sweep could miss the min-latency extreme
        grid = threshold_grid(k_min, k_max, n)
        assert len(grid) == n
        assert grid[0] == k_min
        assert grid[-1] == k_max
        assert all(a < b for a, b in zip(grid, grid[1:]))

    def test_degenerate_range_collapses(self):
        assert threshold_grid(5.0, 5.0, 10) == [5.0]
        assert threshold_grid(5.0, 4.0, 10) == [5.0]

    def test_tiny_point_counts(self):
        assert threshold_grid(1.0, 2.0, 1) == [1.0, 2.0]
        assert threshold_grid(1.0, 2.0, 2) == [1.0, 2.0]


class TestNonDominated:
    def _sols(self, points):
        return [Solution(mapping=None, period=p, latency=lat)
                for p, lat in points]

    def test_evicts_dominated_points(self):
        front = non_dominated(self._sols(
            [(2.0, 24.0), (3.2, 20.0), (5.04, 16.0), (3.0, 12.0)]
        ))
        assert [(s.period, s.latency) for s in front] == \
            [(2.0, 24.0), (3.0, 12.0)]

    def test_collapses_ties(self):
        front = non_dominated(self._sols(
            [(2.0, 10.0), (2.0, 10.0), (3.0, 10.0), (2.0, 12.0)]
        ))
        assert [(s.period, s.latency) for s in front] == [(2.0, 10.0)]

    def test_staircase_shape(self):
        rng = random.Random(7)
        pts = [(rng.uniform(1, 9), rng.uniform(1, 9)) for _ in range(60)]
        front = non_dominated(self._sols(pts))
        assert front
        for a, b in zip(front, front[1:]):
            assert a.period < b.period
            assert a.latency > b.latency
        assert_no_dominated_pairs([(s.period, s.latency) for s in front])


class TestParetoDominanceRegression:
    def test_dominated_sweep_points_are_evicted(self, tmp_path):
        # Regression for the old filter, which only compared each sweep
        # solution against front[-1].latency: a larger period threshold
        # that admits a solution with BOTH smaller period and smaller
        # latency left earlier dominated points in the returned "front".
        # Exact bounded solves cannot produce that shape (latency(K) is
        # monotone), so drive the filter through the cache: pre-populate
        # the exact task keys pareto_front will look up with a crafted
        # dominated sweep, then check the returned front.
        from repro.campaign import ResultCache
        from repro.campaign.spec import Task
        from repro.core.costs import FLOAT_TOL
        from repro.serialization import mapping_to_dict, spec_to_dict

        app = repro.PipelineApplication.from_works([14, 4, 2, 4])
        plat = repro.Platform.homogeneous(4, 1.0)
        spec = repro.ProblemSpec(app, plat, allow_data_parallel=True)
        mapping_doc = mapping_to_dict(
            repro.solve(spec, repro.Objective.PERIOD).mapping
        )
        instance = spec_to_dict(spec)
        solver = {"name": "pareto", "mode": "auto",
                  "exact_fallback": False, "engine": "bnb"}

        def key(objective, period_bound=None):
            return Task(index=0, instance_id="pareto", instance=instance,
                        objective=objective, period_bound=period_bound,
                        latency_bound=None, solver=solver).key

        def row(period, latency):
            return {"status": "ok", "period": period, "latency": latency,
                    "value": latency, "mapping": mapping_doc,
                    "algorithm": "crafted", "error": None,
                    "error_type": None}

        cache = ResultCache(tmp_path)
        cache.put(key("period"), row(2.0, 24.0))    # min-period extreme
        cache.put(key("latency"), row(8.0, 10.0))   # min-latency extreme
        grid = threshold_grid(2.0, 8.0, 4)
        # the last (largest) threshold admits (3.0, 12.0), which
        # dominates the two middle points the old filter kept
        crafted = [(2.0, 24.0), (3.2, 20.0), (5.04, 16.0), (3.0, 12.0)]
        for bound, (p, lat) in zip(grid, crafted):
            cache.put(key("latency", bound * (1 + FLOAT_TOL)), row(p, lat))

        front = pareto_front(spec, num_points=4, cache=cache)
        assert cache.misses == 0  # every solve came from the crafted cache
        points = [(s.period, s.latency) for s in front]
        assert points == [(2.0, 24.0), (3.0, 12.0), (8.0, 10.0)]
        assert (3.2, 20.0) not in points and (5.04, 16.0) not in points
        assert_no_dominated_pairs(points)

    def test_random_instance_fronts_have_no_dominated_pairs(self):
        from repro.generators import random_pipeline, random_platform

        rng = random.Random(2007)
        for _ in range(6):
            app = random_pipeline(rng, rng.randint(3, 5), low=1, high=9)
            plat = random_platform(rng, rng.randint(3, 4), low=1, high=6)
            spec = repro.ProblemSpec(app, plat,
                                     allow_data_parallel=rng.random() < 0.5)
            try:
                front = pareto_front(spec, num_points=6,
                                     exact_fallback=True)
            except repro.ReproError:
                continue
            assert_no_dominated_pairs(
                [(s.period, s.latency) for s in front]
            )


class TestTable1:
    def test_render_contains_all_rows(self):
        text = render_table1()
        for label in ("Hom. pipeline", "Het. pipeline", "Hom. fork", "Het. fork"):
            assert text.count(label) == 2  # once per platform sub-table

    def test_render_statuses(self):
        text = render_table1()
        assert "NP-hard (**)" in text  # Thm 9
        assert "Poly (*)" in text      # Thm 7/8/14

    def test_validate_poly_cell(self):
        rng = random.Random(33)
        outcome = validate_cell(
            rng, "pipeline", True, True, False, Criterion.PERIOD, trials=2
        )
        assert outcome.ok

    def test_validate_nphard_cell(self):
        rng = random.Random(34)
        outcome = validate_cell(
            rng, "fork", False, True, False, Criterion.LATENCY, trials=2
        )
        assert outcome.ok

    @pytest.mark.slow
    def test_full_regeneration(self):
        text, validations = regenerate_table1(random.Random(35), trials=1)
        assert len(validations) == 48
        assert all(v.ok for v in validations.values())
        assert "Homogeneous platforms" in text
