"""Tests for reporting, Pareto fronts and Table 1 regeneration."""

import random

import pytest

import repro
from repro.analysis import format_table, pareto_front, render_table1
from repro.analysis.table1 import regenerate_table1, validate_cell
from repro.algorithms.registry import Criterion


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["x", "y"], ["longer", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[2:])

    def test_title(self):
        text = format_table(["a"], [["1"]], title="T")
        assert text.splitlines()[0] == "T"


class TestPareto:
    def test_front_monotone_hom_pipeline(self):
        app = repro.PipelineApplication.from_works([14, 4, 2, 4])
        plat = repro.Platform.homogeneous(4, 1.0)
        spec = repro.ProblemSpec(app, plat, allow_data_parallel=True)
        front = pareto_front(spec, num_points=16)
        assert front
        for a, b in zip(front, front[1:]):
            assert a.period <= b.period + 1e-9
            assert a.latency >= b.latency - 1e-9

    def test_front_endpoints(self):
        app = repro.ForkApplication.homogeneous(4, 2.0, 3.0)
        plat = repro.Platform.heterogeneous([1.0, 2.0, 3.0])
        spec = repro.ProblemSpec(app, plat, allow_data_parallel=False)
        front = pareto_front(spec, num_points=12)
        best_period = repro.solve(spec, repro.Objective.PERIOD).period
        best_latency = repro.solve(spec, repro.Objective.LATENCY).latency
        assert front[0].period == pytest.approx(best_period)
        assert front[-1].latency == pytest.approx(best_latency)

    def _np_hard_spec(self):
        # het pipeline on het platform, no DP: period is NP-hard (Thm 9)
        return repro.ProblemSpec(
            repro.PipelineApplication.from_works([9, 2, 7]),
            repro.Platform.heterogeneous([3, 1]),
        )

    def test_np_hard_without_fallback_raises(self):
        with pytest.raises(repro.NPHardError):
            pareto_front(self._np_hard_spec(), num_points=4)

    def test_engine_knob_fronts_agree(self):
        spec = self._np_hard_spec()
        bnb = pareto_front(spec, num_points=6, exact_fallback=True)
        enum = pareto_front(spec, num_points=6, exact_fallback=True,
                            engine="enumerate")
        assert [(s.period, s.latency) for s in bnb] == \
            [(s.period, s.latency) for s in enum]

    def test_cache_and_workers_reproduce_serial_front(self, tmp_path):
        from repro.campaign import ResultCache

        app = repro.PipelineApplication.from_works([14, 4, 2, 4])
        spec = repro.ProblemSpec(
            app, repro.Platform.homogeneous(4, 1.0), allow_data_parallel=True
        )
        plain = pareto_front(spec, num_points=10)
        cache = ResultCache(tmp_path)
        parallel = pareto_front(spec, num_points=10, cache=cache, workers=2)
        cached = pareto_front(spec, num_points=10, cache=cache)
        points = [(s.period, s.latency) for s in plain]
        assert [(s.period, s.latency) for s in parallel] == points
        assert [(s.period, s.latency) for s in cached] == points
        # the second traversal came entirely from the cache
        assert cache.hits >= 12


class TestTable1:
    def test_render_contains_all_rows(self):
        text = render_table1()
        for label in ("Hom. pipeline", "Het. pipeline", "Hom. fork", "Het. fork"):
            assert text.count(label) == 2  # once per platform sub-table

    def test_render_statuses(self):
        text = render_table1()
        assert "NP-hard (**)" in text  # Thm 9
        assert "Poly (*)" in text      # Thm 7/8/14

    def test_validate_poly_cell(self):
        rng = random.Random(33)
        outcome = validate_cell(
            rng, "pipeline", True, True, False, Criterion.PERIOD, trials=2
        )
        assert outcome.ok

    def test_validate_nphard_cell(self):
        rng = random.Random(34)
        outcome = validate_cell(
            rng, "fork", False, True, False, Criterion.LATENCY, trials=2
        )
        assert outcome.ok

    @pytest.mark.slow
    def test_full_regeneration(self):
        text, validations = regenerate_table1(random.Random(35), trials=1)
        assert len(validations) == 48
        assert all(v.ok for v in validations.values())
        assert "Homogeneous platforms" in text
