"""Tests for the discrete-event simulator against the analytic model."""

import random

import pytest

from repro.core import (
    AssignmentKind,
    ForkApplication,
    ForkJoinApplication,
    PipelineApplication,
    Platform,
    evaluate,
)
from repro.heuristics import random_fork_mapping, random_pipeline_mapping
from repro.simulation import DispatchPolicy, simulate, simulate_pipeline
from tests.conftest import fork_mapping, pipeline_mapping

# staircase quantization of the slope estimator: generous data-set count
N_SETS = 600
RTOL = 0.02


class TestPipelineSimulation:
    def test_single_processor_exact(self):
        app = PipelineApplication.from_works([4.0, 2.0])
        plat = Platform.homogeneous(1, 2.0)
        m = pipeline_mapping(app, plat, [([1, 2], [0])])
        res = simulate_pipeline(m, num_data_sets=100)
        assert res.measured_period == pytest.approx(3.0)
        assert res.max_latency == pytest.approx(3.0)
        assert res.order_inversions == 0

    def test_round_robin_matches_analytic(self):
        rng = random.Random(26)
        for _ in range(12):
            n, p = rng.randint(1, 4), rng.randint(1, 5)
            app = PipelineApplication.from_works(
                [rng.randint(1, 9) for _ in range(n)]
            )
            plat = Platform.heterogeneous(
                [rng.choice([1.0, 2.0, 3.0]) for _ in range(p)]
            )
            sol = random_pipeline_mapping(app, plat, rng, rng.random() < 0.5)
            period, latency = evaluate(sol.mapping)
            res = simulate(sol.mapping, num_data_sets=N_SETS)
            assert res.measured_period == pytest.approx(period, rel=RTOL)
            assert res.max_latency <= latency + 1e-6

    def test_latency_reaches_analytic_on_aligned_replicas(self):
        # one replicated group: every data set hitting the slow processor
        # realizes the analytic delay exactly
        app = PipelineApplication.from_works([6.0])
        plat = Platform.heterogeneous([3.0, 1.0])
        m = pipeline_mapping(app, plat, [([1], [0, 1])])
        res = simulate_pipeline(m, num_data_sets=50)
        assert res.max_latency == pytest.approx(6.0)  # 6 / min(3,1)

    def test_overdriven_input_grows_latency(self):
        app = PipelineApplication.from_works([4.0])
        plat = Platform.homogeneous(1, 1.0)
        m = pipeline_mapping(app, plat, [([1], [0])])
        res = simulate_pipeline(m, num_data_sets=100, input_period=2.0)
        # server takes 4 per item, input every 2: queue grows linearly
        assert res.max_latency > 100
        assert res.measured_period == pytest.approx(4.0, rel=RTOL)

    def test_demand_driven_beats_round_robin_on_het_replicas(self):
        # replicated group on speeds (3, 1): round robin is limited by the
        # slow processor (period W/(2*1)); demand-driven approaches
        # W/(3+1) but breaks ordering.
        app = PipelineApplication.from_works([12.0])
        plat = Platform.heterogeneous([3.0, 1.0])
        m = pipeline_mapping(app, plat, [([1], [0, 1])])
        rr = simulate_pipeline(
            m, num_data_sets=N_SETS, policy=DispatchPolicy.ROUND_ROBIN
        )
        free_input = 12.0 / 4.0  # feed at the demand-driven optimum
        dd = simulate_pipeline(
            m, num_data_sets=N_SETS, input_period=free_input,
            policy=DispatchPolicy.DEMAND_DRIVEN, enforce_order=False,
        )
        assert rr.measured_period == pytest.approx(6.0, rel=RTOL)
        assert dd.measured_period < rr.measured_period
        assert dd.order_inversions > 0
        # note: round robin over *different-speed* replicas also produces
        # raw out-of-order completions (that is why the paper charges tmax);
        # the reorder buffer restores the stream order in both policies.

    def test_round_robin_keeps_order_on_identical_replicas(self):
        app = PipelineApplication.from_works([12.0])
        plat = Platform.homogeneous(3, 1.0)
        m = pipeline_mapping(app, plat, [([1], [0, 1, 2])])
        res = simulate_pipeline(m, num_data_sets=200)
        assert res.order_inversions == 0

    def test_data_parallel_group_is_single_server(self):
        app = PipelineApplication.from_works([8.0])
        plat = Platform.heterogeneous([3.0, 1.0])
        m = pipeline_mapping(
            app, plat, [([1], [0, 1])], kinds=[AssignmentKind.DATA_PARALLEL]
        )
        res = simulate_pipeline(m, num_data_sets=100)
        assert res.measured_period == pytest.approx(2.0, rel=RTOL)
        assert res.max_latency == pytest.approx(2.0)


class TestForkSimulation:
    def test_matches_analytic(self):
        rng = random.Random(27)
        for _ in range(10):
            n, p = rng.randint(1, 4), rng.randint(1, 5)
            app = ForkApplication.from_works(
                rng.randint(1, 6), [rng.randint(1, 9) for _ in range(n)]
            )
            plat = Platform.heterogeneous(
                [rng.choice([1.0, 2.0]) for _ in range(p)]
            )
            sol = random_fork_mapping(app, plat, rng, rng.random() < 0.5)
            period, latency = evaluate(sol.mapping)
            res = simulate(sol.mapping, num_data_sets=N_SETS)
            assert res.measured_period == pytest.approx(period, rel=RTOL)
            assert res.max_latency <= latency + 1e-6

    def test_flexible_model_start(self):
        # branches start at w0/s0, not after the whole root group
        app = ForkApplication.from_works(2.0, [4.0, 6.0])
        plat = Platform.homogeneous(3, 1.0)
        m = fork_mapping(app, plat, [([0, 1], [0]), ([2], [1])])
        res = simulate(m, num_data_sets=1)
        # data set 0: S0 done at 2; branch group done at 2+6=8; root group
        # done at 6; completion 8
        assert res.completion_times[0] == pytest.approx(8.0)


class TestForkJoinSimulation:
    def test_matches_analytic(self):
        rng = random.Random(28)
        for _ in range(10):
            n, p = rng.randint(1, 3), rng.randint(1, 5)
            app = ForkJoinApplication.from_works(
                rng.randint(1, 6),
                [rng.randint(1, 9) for _ in range(n)],
                rng.randint(1, 6),
            )
            plat = Platform.heterogeneous(
                [rng.choice([1.0, 2.0]) for _ in range(p)]
            )
            sol = random_fork_mapping(app, plat, rng, rng.random() < 0.5)
            period, latency = evaluate(sol.mapping)
            res = simulate(sol.mapping, num_data_sets=N_SETS)
            assert res.measured_period == pytest.approx(period, rel=RTOL)
            assert res.max_latency <= latency + 1e-6

    def test_join_waits_for_slowest_branch(self):
        app = ForkJoinApplication.from_works(1.0, [2.0, 10.0], 3.0)
        plat = Platform.homogeneous(3, 1.0)
        m = fork_mapping(app, plat, [([0, 1], [0]), ([2], [1]), ([3], [2])])
        res = simulate(m, num_data_sets=1)
        assert res.completion_times[0] == pytest.approx(14.0)


class TestResultFields:
    def test_result_shape(self):
        app = PipelineApplication.from_works([2.0])
        plat = Platform.homogeneous(1)
        m = pipeline_mapping(app, plat, [([1], [0])])
        res = simulate(m, num_data_sets=10)
        assert res.num_data_sets == 10
        assert len(res.latencies) == 10
        assert res.mean_latency <= res.max_latency + 1e-12

    def test_type_error(self):
        with pytest.raises(TypeError):
            simulate(object())
