"""Tests for the heuristic portfolio: validity, quality bounds, improvement."""

import random

import pytest

from repro.algorithms import brute_force as bf
from repro.algorithms import exact
from repro.algorithms.problem import Objective, ProblemSpec
from repro.core import (
    ForkApplication,
    PipelineApplication,
    Platform,
    ReproError,
    validate,
)
from repro.heuristics import (
    best_of_random,
    fork_latency_lpt,
    improve_mapping,
    pipeline_period_greedy,
    pipeline_period_sweep,
    random_fork_mapping,
    random_pipeline_mapping,
)


class TestPipelineGreedy:
    def test_valid_and_never_beats_exact(self):
        rng = random.Random(17)
        for _ in range(10):
            n, p = rng.randint(2, 6), rng.randint(2, 6)
            app = PipelineApplication.from_works(
                [rng.randint(1, 9) for _ in range(n)]
            )
            plat = Platform.heterogeneous([rng.randint(1, 5) for _ in range(p)])
            sol = pipeline_period_sweep(app, plat)
            validate(sol.mapping, allow_data_parallel=False)
            best = exact.pipeline_period_exact_blocks(app, plat)
            assert sol.period >= best.period - 1e-9

    def test_single_interval(self):
        app = PipelineApplication.from_works([4, 4])
        plat = Platform.heterogeneous([2.0, 1.0])
        sol = pipeline_period_greedy(app, plat, 1)
        # whole chain replicated on both: 8 / (2 * 1) = 4
        assert sol.period == pytest.approx(4.0)

    def test_rejects_bad_q(self):
        app = PipelineApplication.from_works([4, 4])
        plat = Platform.heterogeneous([2.0, 1.0])
        with pytest.raises(ReproError):
            pipeline_period_greedy(app, plat, 3)

    def test_quality_within_factor_two_often(self):
        """Empirical sanity: the sweep stays within 2x of optimal on this
        family (not a proven bound; a regression canary)."""
        rng = random.Random(18)
        for _ in range(10):
            n, p = rng.randint(2, 6), rng.randint(2, 6)
            app = PipelineApplication.from_works(
                [rng.randint(1, 9) for _ in range(n)]
            )
            plat = Platform.heterogeneous([rng.randint(1, 4) for _ in range(p)])
            sol = pipeline_period_sweep(app, plat)
            best = exact.pipeline_period_exact_blocks(app, plat)
            assert sol.period <= 2.0 * best.period + 1e-9


class TestForkLPT:
    def test_valid_and_never_beats_exact(self):
        rng = random.Random(19)
        for _ in range(10):
            n, p = rng.randint(1, 6), rng.randint(1, 4)
            app = ForkApplication.from_works(
                rng.randint(1, 9), [rng.randint(1, 9) for _ in range(n)]
            )
            plat = Platform.homogeneous(p, 1.0)
            sol = fork_latency_lpt(app, plat)
            validate(sol.mapping, allow_data_parallel=False)
            best = exact.fork_latency_exact_hom_platform(app, plat)
            assert sol.latency >= best.latency - 1e-9
            # Graham's LPT bound for P||Cmax: 4/3 - 1/(3p) on the makespan
            w0 = app.root.work
            cmax_opt = best.latency - w0  # s = 1
            cmax_lpt = sol.latency - w0
            assert cmax_lpt <= (4 / 3) * cmax_opt + 1e-9

    def test_rejects_het_platform(self):
        app = ForkApplication.from_works(1.0, [1.0])
        with pytest.raises(ReproError):
            fork_latency_lpt(app, Platform.heterogeneous([1, 2]))


class TestLocalSearch:
    def test_never_worse_than_seed(self):
        rng = random.Random(20)
        for _ in range(8):
            n, p = rng.randint(2, 5), rng.randint(2, 5)
            app = PipelineApplication.from_works(
                [rng.randint(1, 9) for _ in range(n)]
            )
            plat = Platform.heterogeneous([rng.randint(1, 4) for _ in range(p)])
            seed = random_pipeline_mapping(app, plat, rng)
            improved = improve_mapping(seed, Objective.PERIOD)
            assert improved.period <= seed.period + 1e-9
            validate(improved.mapping, allow_data_parallel=False)

    def test_respects_bounds(self):
        rng = random.Random(21)
        app = PipelineApplication.from_works([5, 3, 2])
        plat = Platform.heterogeneous([3.0, 2.0, 1.0])
        seed = random_pipeline_mapping(app, plat, rng)
        improved = improve_mapping(
            seed, Objective.PERIOD, latency_bound=seed.latency
        )
        assert improved.latency <= seed.latency * (1 + 1e-9)

    def test_improves_fork_latency(self):
        rng = random.Random(22)
        app = ForkApplication.from_works(1.0, [5.0, 4.0, 3.0, 2.0])
        plat = Platform.homogeneous(3, 1.0)
        seed = random_fork_mapping(app, plat, rng)
        improved = improve_mapping(seed, Objective.LATENCY)
        best = exact.fork_latency_exact_hom_platform(app, plat)
        assert improved.latency <= seed.latency + 1e-9
        assert improved.latency >= best.latency - 1e-9

    def test_reaches_optimum_from_greedy_often(self):
        """On tiny instances greedy + local search should match brute force
        most of the time; assert it never errs and count quality."""
        rng = random.Random(23)
        hits = 0
        trials = 6
        for _ in range(trials):
            n, p = rng.randint(2, 4), rng.randint(2, 4)
            app = PipelineApplication.from_works(
                [rng.randint(1, 9) for _ in range(n)]
            )
            plat = Platform.heterogeneous([rng.randint(1, 4) for _ in range(p)])
            seed = pipeline_period_sweep(app, plat)
            improved = improve_mapping(seed, Objective.PERIOD)
            want = bf.optimal(
                ProblemSpec(app, plat, False), Objective.PERIOD
            ).period
            assert improved.period >= want - 1e-9
            if improved.period <= want + 1e-9:
                hits += 1
        assert hits >= trials // 2


class TestRandomBaseline:
    def test_pipeline_mappings_valid(self):
        rng = random.Random(24)
        for _ in range(20):
            n, p = rng.randint(1, 6), rng.randint(1, 6)
            app = PipelineApplication.from_works(
                [rng.randint(1, 9) for _ in range(n)]
            )
            plat = Platform.heterogeneous([rng.randint(1, 4) for _ in range(p)])
            dp = rng.random() < 0.5
            sol = random_pipeline_mapping(app, plat, rng, dp)
            validate(sol.mapping, allow_data_parallel=dp)

    def test_fork_mappings_valid(self):
        rng = random.Random(25)
        from repro.core import ForkJoinApplication

        for _ in range(20):
            n, p = rng.randint(1, 5), rng.randint(1, 5)
            if rng.random() < 0.5:
                app = ForkApplication.from_works(
                    rng.randint(1, 5), [rng.randint(1, 9) for _ in range(n)]
                )
            else:
                app = ForkJoinApplication.from_works(
                    rng.randint(1, 5),
                    [rng.randint(1, 9) for _ in range(n)],
                    rng.randint(1, 5),
                )
            plat = Platform.heterogeneous([rng.randint(1, 4) for _ in range(p)])
            dp = rng.random() < 0.5
            sol = random_fork_mapping(app, plat, rng, dp)
            validate(sol.mapping, allow_data_parallel=dp)


class TestBestOfRandom:
    def test_beats_or_matches_single_samples(self):
        """The batch pick must equal the true minimum over its samples."""
        rng = random.Random(31)
        app = PipelineApplication.from_works([5, 3, 8, 2, 6])
        plat = Platform.heterogeneous([1, 2, 3, 2, 1])
        # same seed stream: drawing k singles equals one k-sample portfolio
        portfolio = best_of_random(
            app, plat, random.Random(7), Objective.PERIOD, samples=50
        )
        singles = [
            random_pipeline_mapping(app, plat, random.Random(7), False)
        ]
        for _ in range(49):
            singles.append(random_pipeline_mapping(app, plat, rng, False))
        assert portfolio.period <= max(s.period for s in singles) + 1e-12
        # the reported metrics must match a scalar re-evaluation
        from repro.core import evaluate

        period, latency = evaluate(portfolio.mapping)
        assert portfolio.period == pytest.approx(period)
        assert portfolio.latency == pytest.approx(latency)
        validate(portfolio.mapping, allow_data_parallel=False)

    def test_is_exact_minimum_of_its_sample_set(self):
        rng = random.Random(8)
        app = ForkApplication.from_works(2, [4, 1, 6])
        plat = Platform.heterogeneous([1, 3, 2, 1])
        sol = best_of_random(
            app, plat, rng, Objective.LATENCY, samples=120,
            allow_data_parallel=True,
        )
        # re-draw the identical sample set and minimize by hand
        rng2 = random.Random(8)
        best = min(
            random_fork_mapping(app, plat, rng2, True).latency
            for _ in range(120)
        )
        assert sol.latency == pytest.approx(best)
        assert sol.meta == {"algorithm": "random-portfolio", "samples": 120}

    def test_respects_bounds(self):
        rng = random.Random(9)
        app = PipelineApplication.from_works([6, 2, 8])
        plat = Platform.heterogeneous([2, 1, 3])
        bound = 10.0
        sol = best_of_random(
            app, plat, rng, Objective.PERIOD, samples=100,
            latency_bound=bound,
        )
        assert sol.latency <= bound * (1 + 1e-9)

    def test_infeasible_bound_raises(self):
        from repro.core import InfeasibleProblemError

        rng = random.Random(10)
        app = PipelineApplication.from_works([6, 2, 8])
        plat = Platform.heterogeneous([2, 1, 3])
        with pytest.raises(InfeasibleProblemError):
            best_of_random(
                app, plat, rng, Objective.PERIOD, samples=50,
                period_bound=1e-6,
            )

    def test_zero_samples_rejected(self):
        from repro.core import InfeasibleProblemError

        app = PipelineApplication.from_works([6.0])
        plat = Platform.homogeneous(1)
        with pytest.raises(InfeasibleProblemError):
            best_of_random(
                app, plat, random.Random(0), Objective.PERIOD, samples=0
            )
