"""The http cache backend under a real campaign: the PR 4 seam test.

A campaign run against a remote solver-service cache must produce rows
bit-identical to the same run against a local jsonl cache (up to the
volatile timing fields), with zero runner changes — the backend protocol
is the only seam.
"""

from repro.campaign import (
    CampaignSpec,
    ResultCache,
    run_campaign,
    strip_volatile,
)


def _small_spec() -> CampaignSpec:
    return CampaignSpec(
        name="http-seam",
        instances=(
            {"type": "random", "graph": "pipeline", "count": 3,
             "seed": 11, "n": [3, 4], "p": 3},
        ),
        objectives=("period",),
        solvers=(
            {"name": "exact", "mode": "auto", "exact_fallback": True},
            {"name": "random", "mode": "random", "seed": 2, "samples": 8},
        ),
    )


class TestCampaignOverHttp:
    def test_rows_bit_identical_to_jsonl_backend(self, server, tmp_path):
        spec = _small_spec()
        local = run_campaign(
            spec, cache=ResultCache(tmp_path / "local", backend="jsonl")
        )
        remote_cache = ResultCache(url=server.url, backend="http")
        remote = run_campaign(spec, cache=remote_cache)
        assert [strip_volatile(r) for r in remote.rows] == \
            [strip_volatile(r) for r in local.rows]
        assert remote.stats["errors"] == 0

    def test_second_run_fully_served_from_remote_cache(self, server):
        spec = _small_spec()
        cold = run_campaign(
            spec, cache=ResultCache(url=server.url, backend="http")
        )
        assert cold.stats["cache_hits"] == 0
        # a different runner process/instance sharing the same service
        warm = run_campaign(
            spec, cache=ResultCache(url=server.url, backend="http")
        )
        assert warm.stats["cache_hits"] == warm.stats["tasks"]
        assert [strip_volatile(r) for r in warm.rows] == \
            [strip_volatile(r) for r in cold.rows]
        # the server-side counters saw the fleet's traffic
        stats = server.service.stats()
        assert stats["cache"]["counters"]["hits"] >= warm.stats["tasks"]
        assert stats["cache"]["counters"]["puts"] == cold.stats["tasks"]
