"""``GET /metrics``: Prometheus exposition wired to the live service."""

import threading

import pytest

from repro.campaign import ResultCache
from repro.obs import read_spans
from repro.service import ServiceUnavailableError
from repro.service.client import ServiceClient
from repro.service.server import make_server


def parse_exposition(text):
    """Sample lines of an exposition payload as ``{name{labels}: value}``."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples


def _solves_total(samples):
    return sum(
        v for k, v in samples.items()
        if k.startswith("repro_solves_total")
    )


class TestMetricsEndpoint:
    def test_valid_exposition_with_all_families(self, client):
        text = client.metrics()
        for family in (
            "repro_solve_requests_total",
            "repro_coalesced_total",
            "repro_cache_served_total",
            "repro_solve_errors_total",
            "repro_cache_ops_total",
            "repro_inflight_solves",
            "repro_solve_seconds",
            "repro_request_seconds",
            "repro_http_requests_total",
        ):
            assert f"# HELP {family} " in text
            assert f"# TYPE {family} " in text
        parse_exposition(text)                 # every sample line parses

    def test_solve_moves_the_counters(self, client, pipeline_request):
        before = parse_exposition(client.metrics())
        client.solve(pipeline_request)
        after = parse_exposition(client.metrics())
        assert after["repro_solve_requests_total"] == \
            before.get("repro_solve_requests_total", 0) + 1
        assert _solves_total(after) == _solves_total(before) + 1
        # the solve landed in exactly one (engine, status) labeled series
        series = [
            k for k, v in after.items()
            if k.startswith("repro_solves_total{") and v > 0
        ]
        assert len(series) == 1
        assert 'status="completed"' in series[0]

    def test_solve_latency_histogram_labeled_by_engine(
            self, client, pipeline_request):
        client.solve(pipeline_request)
        text = client.metrics()
        samples = parse_exposition(text)
        counts = [
            (k, v) for k, v in samples.items()
            if k.startswith("repro_solve_seconds_count{")
        ]
        assert len(counts) == 1
        name, value = counts[0]
        assert "engine=" in name and 'status="completed"' in name
        assert value == 1
        # cumulative buckets end at +Inf == _count
        inf = next(
            v for k, v in samples.items()
            if k.startswith("repro_solve_seconds_bucket")
            and 'le="+Inf"' in k
        )
        assert inf == 1

    def test_cache_hit_counts_as_served(self, client, pipeline_request):
        client.solve(pipeline_request)
        client.solve(pipeline_request)         # warm: served from cache
        samples = parse_exposition(client.metrics())
        assert samples["repro_cache_served_total"] == 1
        assert _solves_total(samples) == 1
        assert samples['repro_cache_ops_total{op="get",result="hit"}'] == 1
        assert samples['repro_cache_ops_total{op="get",result="miss"}'] == 1
        assert samples['repro_cache_ops_total{op="put",result="ok"}'] == 1

    def test_http_requests_labeled_by_endpoint(self, client,
                                               pipeline_request):
        client.healthz()
        client.solve(pipeline_request)
        client.metrics()
        samples = parse_exposition(client.metrics())
        healthz = 'repro_http_requests_total{endpoint="/v1/healthz",code="200"}'
        solve = 'repro_http_requests_total{endpoint="/v1/solve",code="200"}'
        metrics = 'repro_http_requests_total{endpoint="/metrics",code="200"}'
        assert samples[healthz] == 1
        assert samples[solve] == 1
        assert samples[metrics] >= 1
        # request latency histogram covers the same endpoints
        assert 'repro_request_seconds_count{endpoint="/v1/solve"}' in samples

    def test_unknown_paths_collapse_to_other(self, client):
        with pytest.raises(Exception):
            client._expect_ok("GET", "/v2/everything")
        samples = parse_exposition(client.metrics())
        assert samples['repro_http_requests_total{endpoint="other",code="404"}'] == 1

    def test_metrics_agree_with_stats(self, client, pipeline_request):
        client.solve(pipeline_request)
        client.solve(pipeline_request)
        stats = client.stats()
        samples = parse_exposition(client.metrics())
        svc = stats["service"]
        assert samples["repro_solve_requests_total"] == svc["requests"]
        assert _solves_total(samples) == svc["solves"]
        assert samples["repro_cache_served_total"] == svc["served_from_cache"]
        assert samples["repro_coalesced_total"] == svc["coalesced"]
        assert samples["repro_inflight_solves"] == svc["inflight"]

    def test_accounting_invariant_under_concurrent_load(self, client):
        # requests == served + coalesced + solves once drained: every
        # accepted solve request is accounted to exactly one outcome
        def request(n):
            return {
                "instance": {
                    "kind": "instance",
                    "application": {"kind": "pipeline",
                                    "works": [14, 4, 2, 4][:n]},
                    "platform": {"kind": "platform", "speeds": [1, 1]},
                    "allow_data_parallel": False,
                },
                "objective": "period",
            }

        threads = [
            threading.Thread(target=client.solve, args=(request(2 + i % 3),))
            for i in range(12)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        samples = parse_exposition(client.metrics())
        assert samples["repro_inflight_solves"] == 0
        assert samples["repro_solve_requests_total"] == 12
        outcomes = (
            samples["repro_cache_served_total"]
            + samples["repro_coalesced_total"]
            + _solves_total(samples)
        )
        assert outcomes == 12

    def test_client_metrics_requires_a_server(self):
        lonely = ServiceClient("http://127.0.0.1:9", timeout=0.2, retries=0)
        with pytest.raises(ServiceUnavailableError):
            lonely.metrics()


class TestServerTracing:
    def test_solve_spans_with_propagated_trace(self, tmp_path,
                                               pipeline_request):
        trace_path = tmp_path / "spans.jsonl"
        srv = make_server(
            port=0,
            cache=ResultCache(tmp_path / "cache"),
            trace_log=trace_path,
        )
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(srv.url, timeout=30.0)
            client.solve(pipeline_request, trace="feedface00000001")
            client.solve(pipeline_request, trace="feedface00000001")
        finally:
            srv.shutdown()
            srv.server_close()
            srv.service.close()
            thread.join(timeout=5)
        spans = read_spans(trace_path)
        names = [s["span"] for s in spans]
        # cold: miss + solve + put; warm: hit; plus one request span each
        assert names.count("request") == 2
        assert names.count("cache-get") == 2
        assert names.count("solve") == 1
        assert names.count("cache-put") == 1
        # the client-supplied id stamps every span (X-Repro-Trace)
        assert {s["trace"] for s in spans} == {"feedface00000001"}
        solve = next(s for s in spans if s["span"] == "solve")
        assert solve["engine"] and solve["status"] == "completed"

    def test_server_generates_ids_when_header_absent(self, tmp_path,
                                                     pipeline_request):
        trace_path = tmp_path / "spans.jsonl"
        srv = make_server(
            port=0,
            cache=ResultCache(tmp_path / "cache"),
            trace_log=trace_path,
        )
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            ServiceClient(srv.url, timeout=30.0).solve(pipeline_request)
        finally:
            srv.shutdown()
            srv.server_close()
            srv.service.close()
            thread.join(timeout=5)
        spans = read_spans(trace_path)
        assert spans
        trace_ids = {s["trace"] for s in spans}
        assert len(trace_ids) == 1
        assert next(iter(trace_ids))           # non-empty generated id
