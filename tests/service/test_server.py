"""Endpoint behaviour of the solver service (transport + semantics)."""

import pytest

from repro.campaign.runner import solve_task, strip_volatile
from repro.service import ServiceError, ServiceUnavailableError
from repro.service.client import ServiceClient
from repro.service.server import task_from_doc

from repro.core import ReproError


KEY_FAKE = "ab" + "0" * 62


class TestHealthAndStats:
    def test_healthz(self, client):
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["version"] == 1

    def test_wait_ready(self, client):
        assert client.wait_ready(timeout=5)["status"] == "ok"

    def test_wait_ready_times_out_without_server(self):
        lonely = ServiceClient("http://127.0.0.1:9", timeout=0.2, retries=0)
        with pytest.raises(ServiceUnavailableError):
            lonely.wait_ready(timeout=0.5)

    def test_stats_shape(self, client, pipeline_request):
        client.solve(pipeline_request)
        stats = client.stats()
        assert stats["service"]["requests"] == 1
        assert stats["service"]["solves"] == 1
        assert stats["service"]["coalesced"] == 0
        assert stats["service"]["inflight"] == 0
        # /v1/stats reports the server-side cache counters in the same
        # shape ResultCache.storage_stats() uses — one miss (the solve
        # lookup), one put (the solved row)
        assert stats["cache"]["counters"] == {
            "hits": 0, "misses": 1, "puts": 1,
        }
        storage = stats["cache"]["storage"]
        assert storage["backend"] == "jsonl"
        assert storage["keys"] == 1
        assert storage["counters"] == stats["cache"]["counters"]


class TestSolveEndpoint:
    def test_solve_then_cached(self, client, pipeline_request):
        first = client.solve(pipeline_request)
        assert first["cached"] is False
        assert first["row"]["status"] == "ok"
        assert first["row"]["period"] == 8.0
        second = client.solve(pipeline_request)
        assert second["cached"] is True
        assert second["row"] == first["row"]

    def test_row_matches_in_process_solve(self, client, pipeline_request):
        response = client.solve(pipeline_request)
        payload, _seconds = solve_task(task_from_doc(pipeline_request))
        # the volatile timing block differs (wall seconds); all solve
        # content must match bit-identically
        assert strip_volatile(response["row"]) == strip_volatile(payload)
        assert response["key"] == task_from_doc(pipeline_request).key

    def test_deterministic_error_row_is_cached(self, client):
        # NP-hard cell without exact_fallback: a ReproError verdict, so
        # the error row itself is cacheable data
        request = {
            "instance": {
                "kind": "instance",
                "application": {"kind": "pipeline", "works": [9, 2, 7]},
                "platform": {"kind": "platform", "speeds": [3, 1]},
                "allow_data_parallel": False,
            },
            "objective": "period",
        }
        first = client.solve(request)
        assert first["row"]["status"] == "error"
        assert first["row"]["error_type"] == "NPHardError"
        second = client.solve(request)
        assert second["cached"] is True
        assert second["row"] == first["row"]

    def test_bad_request_rejected(self, client):
        with pytest.raises(ServiceError) as err:
            client.solve({"instance": {"kind": "platform"}})
        assert err.value.status == 400

    def test_unknown_fields_rejected(self, client, pipeline_request):
        with pytest.raises(ServiceError) as err:
            client.solve({**pipeline_request, "objektive": "period"})
        assert err.value.status == 400

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._expect_ok("GET", "/v2/everything")
        assert err.value.status == 404


class TestCacheEndpoints:
    def test_put_get_roundtrip(self, client):
        assert client.cache_get(KEY_FAKE) is None
        client.cache_put(KEY_FAKE, {"status": "ok", "value": 2.5})
        assert client.cache_get(KEY_FAKE) == {"status": "ok", "value": 2.5}
        assert KEY_FAKE in client.keys()

    def test_solve_key_readable_through_cache_api(self, client,
                                                  pipeline_request):
        response = client.solve(pipeline_request)
        assert client.cache_get(response["key"]) == response["row"]

    def test_empty_put_rejected(self, client):
        # an accepted empty body would be stored as a live {} row and
        # served to every later reader as a bogus hit
        with pytest.raises(ServiceError) as err:
            client.cache_put(KEY_FAKE, {})
        assert err.value.status == 400
        assert client.cache_get(KEY_FAKE) is None

    def test_bodyless_raw_put_rejected(self, server):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{server.url}/v1/cache/{KEY_FAKE}", method="PUT"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_compact_over_http(self, client):
        client.cache_put(KEY_FAKE, {"value": 1})
        info = client.compact()
        assert info["records_dropped"] == 0
        assert info["records_evicted"] == 0
        info = client.compact(max_age_days=0)
        assert info["records_evicted"] == 1
        assert client.cache_get(KEY_FAKE) is None


class TestTaskFromDoc:
    def test_key_matches_campaign_task(self, pipeline_request):
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(
            name="x",
            instances=(
                {"type": "explicit",
                 "application": pipeline_request["instance"]["application"],
                 "platform": pipeline_request["instance"]["platform"]},
            ),
            objectives=("period",),
            solvers=({"name": "service"},),
        )
        [campaign_task] = spec.tasks()
        assert task_from_doc(pipeline_request).key == campaign_task.key

    def test_rejects_non_instance(self):
        with pytest.raises(ReproError):
            task_from_doc({"instance": {"kind": "pipeline", "works": [1]}})

    def test_rejects_bad_objective(self, pipeline_request):
        with pytest.raises(ReproError):
            task_from_doc({**pipeline_request, "objective": "speed"})

    def test_rejects_bad_bound(self, pipeline_request):
        with pytest.raises(ReproError):
            task_from_doc({**pipeline_request, "period_bound": "soon"})

    def test_rejects_unknown_solver_fields(self, pipeline_request):
        with pytest.raises(ReproError):
            task_from_doc({**pipeline_request,
                           "solver": {"mode": "auto", "turbo": True}})


class TestSubmitCommand:
    def test_submit_roundtrip(self, server):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main([
            "submit", "--url", server.url, "--graph", "pipeline",
            "--works", "14,4,2,4", "--speeds", "1,1,1",
            "--objective", "period",
        ], out=out)
        assert code == 0
        text = out.getvalue()
        assert "period=8.0" in text
        assert "(solved)" in text
        # a second submit of the same instance is a cache hit
        out = io.StringIO()
        code = main([
            "submit", "--url", server.url, "--graph", "pipeline",
            "--works", "14,4,2,4", "--speeds", "1,1,1",
            "--objective", "period",
        ], out=out)
        assert code == 0
        assert "(cache hit)" in out.getvalue()

    def test_submit_np_hard_error_row(self, server):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main([
            "submit", "--url", server.url, "--graph", "pipeline",
            "--works", "9,2,7", "--speeds", "3,1", "--objective", "period",
        ], out=out)
        assert code == 2
        assert "NPHardError" in out.getvalue()
