"""Service-side fault tolerance: budgets over the wire, breaker over HTTP,
client retry jitter/deadline."""

from __future__ import annotations

import random
import time

import pytest

from repro.campaign import CircuitBreakerBackend, ResultCache
from repro.campaign.cache import HttpCacheBackend
from repro.service import ServiceClient, ServiceUnavailableError
from repro.service.server import make_server, task_from_doc

HARD_REQUEST = {
    "instance": {
        "kind": "instance",
        "application": {
            "kind": "pipeline",
            "works": [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8],
        },
        "platform": {"kind": "platform", "speeds": [1, 2, 3, 2, 1, 2, 3, 1]},
        "allow_data_parallel": False,
    },
    "objective": "period",
    "solver": {"name": "svc", "mode": "exact", "engine": "bnb",
               "max_nodes": 2000},
}


# ------------------------------------------------------------ solve budgets
def test_solve_accepts_budget_and_returns_anytime_row(client):
    response = client.solve(HARD_REQUEST)
    row = response["row"]
    assert row["status"] == "ok"
    execution = row["execution"]
    assert execution["status"] == "budget_exhausted"
    assert execution["reason"] == "max_nodes"
    assert execution["lower_bound"] > 0.0
    assert row["value"] >= execution["lower_bound"]
    # the row was cached under the budgeted key: same request hits
    assert client.solve(HARD_REQUEST)["cached"] is True


def test_budget_is_part_of_the_request_key():
    plain = dict(HARD_REQUEST, solver={"name": "svc", "mode": "exact"})
    loose = dict(HARD_REQUEST,
                 solver=dict(HARD_REQUEST["solver"], max_nodes=5000))
    keys = {task_from_doc(doc).key
            for doc in (HARD_REQUEST, loose, plain)}
    assert len(keys) == 3   # budgeted rows never alias exact rows


# ------------------------------------------------------- breaker over http
def test_breaker_rides_out_a_service_restart(tmp_path, flaky_service):
    backend = CircuitBreakerBackend(
        HttpCacheBackend(flaky_service.url, timeout=5.0, retries=0),
        journal_dir=tmp_path / "journal",
        failure_threshold=1,
        reset_after=0.01,
    )
    cache = ResultCache(backend=backend)
    key_a, key_b = "aa" + "0" * 62, "bb" + "0" * 62
    cache.put(key_a, {"status": "ok", "value": 1.0})
    assert cache.get(key_a) == {"status": "ok", "value": 1.0}

    flaky_service.kill()
    assert cache.get(key_a) is None          # degraded to a miss
    cache.put(key_b, {"status": "ok", "value": 2.0})
    assert backend.state == "open"
    assert backend.breaker_state()["journal_entries"] >= 1

    flaky_service.start()                    # same port, same disk cache
    ServiceClient(flaky_service.url, timeout=5.0).wait_ready()
    deadline = time.monotonic() + 10.0
    while cache.get(key_a) is None:          # half-open probes until closed
        assert time.monotonic() < deadline, "breaker never recovered"
        time.sleep(0.02)
    assert backend.state == "closed"
    # the spilled put was replayed to the service
    assert backend.breaker_state()["journal_entries"] == 0
    fresh = ServiceClient(flaky_service.url, timeout=5.0)
    assert fresh.cache_get(key_b) == {"status": "ok", "value": 2.0}


def test_tier_server_reports_breaker_state_in_stats(tmp_path, server):
    tier = make_server(port=0, cache_backend="http", cache_url=server.url,
                       cache_fallback_dir=str(tmp_path / "tier-journal"))
    import threading
    thread = threading.Thread(target=tier.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(tier.url, timeout=10.0)
        breaker = client.stats()["cache"]["storage"]["breaker"]
        assert breaker["state"] == "closed"
        assert breaker["failure_threshold"] >= 1
    finally:
        tier.shutdown()
        tier.server_close()
        tier.service.close()
        thread.join(timeout=5)


# --------------------------------------------------- client retry behaviour
def _dead_client(**kwargs) -> ServiceClient:
    # a port from the ephemeral range with nothing listening
    client = ServiceClient("http://127.0.0.1:9", timeout=0.2, **kwargs)
    client._rng = random.Random(7)
    sleeps = []
    client._sleep = sleeps.append
    return client, sleeps


def test_retry_waits_use_decorrelated_jitter():
    client, sleeps = _dead_client(retries=4, backoff=0.1, backoff_cap=1.0)
    with pytest.raises(ServiceUnavailableError):
        client._request("GET", "/v1/healthz")
    assert len(sleeps) == 4                    # one wait between attempts
    rng = random.Random(7)
    expected, previous = [], 0.1
    for _ in range(4):
        previous = min(1.0, rng.uniform(0.1, previous * 3.0))
        expected.append(previous)
    assert sleeps == expected                  # exactly the seeded draws
    assert all(0.1 <= s <= 1.0 for s in sleeps)
    assert len(set(sleeps)) > 1                # not lockstep exponential


def test_retry_deadline_caps_total_retry_time():
    client, sleeps = _dead_client(retries=50, backoff=10.0,
                                  backoff_cap=10.0, retry_deadline=0.5)
    start = time.monotonic()
    with pytest.raises(ServiceUnavailableError):
        client._request("GET", "/v1/healthz")
    # every scheduled wait would cross the 0.5s deadline, so the client
    # gives up instead of sleeping 50 x 10s
    assert sleeps == []
    assert time.monotonic() - start < 5.0
