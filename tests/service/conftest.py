"""Shared fixtures: a live in-process solver service per test."""

import threading

import pytest

from repro.campaign import ResultCache
from repro.service import ServiceClient
from repro.service.server import make_server


@pytest.fixture
def server(tmp_path):
    """A running solver service on an ephemeral port (jsonl cache)."""
    srv = make_server(port=0, cache=ResultCache(tmp_path / "server-cache"))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    srv.service.close()
    thread.join(timeout=5)


class FlakyService:
    """A solver service that can be killed and restarted on the same port.

    The fault-injection counterpart of the ``server`` fixture: ``kill()``
    stops the HTTP transport (subsequent requests are connection
    refusals, exactly what a crashed service looks like to a client) and
    ``start()`` brings the service back on the *same* port over the same
    on-disk cache — the scenario the circuit-breaker backend and the
    jittered client retries exist for.
    """

    def __init__(self, cache_dir) -> None:
        self.cache_dir = cache_dir
        self.port = 0                       # first start picks a free port
        self.server = None
        self._thread = None
        self.restarts = -1

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    @property
    def running(self) -> bool:
        return self.server is not None

    def start(self) -> str:
        assert self.server is None, "already running"
        srv = make_server(host="127.0.0.1", port=self.port,
                          cache=ResultCache(self.cache_dir))
        self.port = srv.server_address[1]
        self.server = srv
        self._thread = threading.Thread(target=srv.serve_forever,
                                        daemon=True)
        self._thread.start()
        self.restarts += 1
        return self.url

    def kill(self) -> None:
        srv, self.server = self.server, None
        if srv is None:
            return
        srv.shutdown()
        srv.server_close()
        srv.service.close()
        self._thread.join(timeout=5)
        self._thread = None


@pytest.fixture
def flaky_service(tmp_path):
    """A running :class:`FlakyService` (kill/restart at will)."""
    svc = FlakyService(tmp_path / "flaky-cache")
    svc.start()
    yield svc
    svc.kill()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30.0)


@pytest.fixture
def pipeline_request():
    """A polynomial (Thm 1) solve request: period of a hom pipeline."""
    return {
        "instance": {
            "kind": "instance",
            "application": {"kind": "pipeline", "works": [14, 4, 2, 4]},
            "platform": {"kind": "platform", "speeds": [1, 1, 1]},
            "allow_data_parallel": False,
        },
        "objective": "period",
    }
