"""Shared fixtures: a live in-process solver service per test."""

import threading

import pytest

from repro.campaign import ResultCache
from repro.service import ServiceClient
from repro.service.server import make_server


@pytest.fixture
def server(tmp_path):
    """A running solver service on an ephemeral port (jsonl cache)."""
    srv = make_server(port=0, cache=ResultCache(tmp_path / "server-cache"))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    srv.service.close()
    thread.join(timeout=5)


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30.0)


@pytest.fixture
def pipeline_request():
    """A polynomial (Thm 1) solve request: period of a hom pipeline."""
    return {
        "instance": {
            "kind": "instance",
            "application": {"kind": "pipeline", "works": [14, 4, 2, 4]},
            "platform": {"kind": "platform", "speeds": [1, 1, 1]},
            "allow_data_parallel": False,
        },
        "objective": "period",
    }
