"""Single-flight coalescing: N identical in-flight requests, one solve."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import repro.service.server as server_mod
from repro.campaign.runner import solve_task, strip_volatile
from repro.service.server import task_from_doc


def _np_hard_request(works, speeds):
    """An exact solve slow enough (and deterministic) to overlap on."""
    return {
        "instance": {
            "kind": "instance",
            "application": {"kind": "pipeline", "works": works},
            "platform": {"kind": "platform", "speeds": speeds},
            "allow_data_parallel": False,
        },
        "objective": "period",
        "solver": {"name": "svc", "mode": "exact", "engine": "bnb"},
    }


class TestSingleFlight:
    def test_n_concurrent_identical_requests_run_one_solve(
        self, client, monkeypatch
    ):
        # instrument the solver with a gate: every request must be
        # in-flight before the (single) solve is allowed to finish, so
        # the test proves coalescing rather than lucky timing
        calls = []
        gate = threading.Event()

        def gated_solve(task):
            calls.append(task.key)
            assert gate.wait(timeout=30), "gate never opened"
            return solve_task(task)

        monkeypatch.setattr(server_mod, "solve_task", gated_solve)
        request = _np_hard_request([9, 2, 7], [3, 1])
        n = 8
        with ThreadPoolExecutor(max_workers=n) as pool:
            futures = [pool.submit(client.solve, request) for _ in range(n)]
            # wait until every request reached the service, then open
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = client.stats()["service"]
                if stats["requests"] >= n:
                    break
                time.sleep(0.01)
            gate.set()
            responses = [f.result(timeout=60) for f in futures]

        assert len(calls) == 1, "solver must run exactly once"
        rows = [r["row"] for r in responses]
        assert all(row == rows[0] for row in rows)
        assert sorted(r["coalesced"] for r in responses) == \
            [False] + [True] * (n - 1)
        stats = client.stats()["service"]
        assert stats["solves"] == 1
        assert stats["coalesced"] == n - 1
        assert stats["requests"] == n
        assert stats["inflight"] == 0

    def test_concurrent_equals_serial_bit_identical(self, client):
        # the coalesced service answer must equal a plain in-process
        # solve of the same task, bit for bit
        request = _np_hard_request([9, 2, 7, 3], [3, 1, 2])
        with ThreadPoolExecutor(max_workers=4) as pool:
            responses = list(pool.map(
                lambda _: client.solve(request), range(4)
            ))
        reference, _seconds = solve_task(task_from_doc(request))
        for response in responses:
            # timing is volatile (wall seconds differ); everything else
            # must match bit for bit
            assert strip_volatile(response["row"]) \
                == strip_volatile(reference)

    def test_different_requests_do_not_coalesce(self, client, monkeypatch):
        calls = []
        real = solve_task

        def counting(task):
            calls.append(task.key)
            return real(task)

        monkeypatch.setattr(server_mod, "solve_task", counting)
        first = _np_hard_request([9, 2, 7], [3, 1])
        second = _np_hard_request([9, 2, 8], [3, 1])
        with ThreadPoolExecutor(max_workers=2) as pool:
            results = list(pool.map(client.solve, [first, second]))
        assert len(calls) == 2
        assert len({r["key"] for r in results}) == 2
        assert client.stats()["service"]["coalesced"] == 0

    def test_request_after_flight_lands_is_cache_hit(self, client):
        request = _np_hard_request([9, 2, 7], [3, 1])
        assert client.solve(request)["cached"] is False
        follow_up = client.solve(request)
        assert follow_up["cached"] is True
        assert client.stats()["service"]["solves"] == 1
