"""Tests for instance generators and named scenarios."""

import random

import pytest

from repro.core import ReproError
from repro.generators import (
    SCENARIOS,
    get_scenario,
    random_fork,
    random_forkjoin,
    random_pipeline,
    random_platform,
)


class TestRandomInstances:
    def test_pipeline(self):
        rng = random.Random(29)
        app = random_pipeline(rng, 5, 2, 7)
        assert app.n == 5
        assert all(2 <= w <= 7 for w in app.works)

    def test_homogeneous_flag(self):
        rng = random.Random(30)
        assert random_pipeline(rng, 4, homogeneous=True).is_homogeneous
        assert random_fork(rng, 4, homogeneous=True).is_homogeneous
        assert random_forkjoin(rng, 4, homogeneous=True).is_homogeneous
        assert random_platform(rng, 4, homogeneous=True).is_homogeneous

    def test_reproducible_from_seed(self):
        a = random_pipeline(random.Random(7), 6)
        b = random_pipeline(random.Random(7), 6)
        assert a.works == b.works

    def test_fork_shapes(self):
        rng = random.Random(31)
        fork = random_fork(rng, 3)
        assert fork.n == 3
        fj = random_forkjoin(rng, 3)
        assert fj.join.index == 4


class TestScenarios:
    def test_known_names(self):
        assert set(SCENARIOS) == {
            "image-pipeline", "master-slave-fork", "scatter-gather"
        }

    def test_lookup(self):
        s = get_scenario("image-pipeline")
        assert s.application.n == 6
        assert not s.platform.is_homogeneous

    def test_unknown_raises(self):
        with pytest.raises(ReproError):
            get_scenario("nope")

    def test_master_slave_is_homogeneous_fork(self):
        s = get_scenario("master-slave-fork")
        assert s.application.is_homogeneous
        assert s.application.n == 16

    def test_scatter_gather_forkjoin(self):
        s = get_scenario("scatter-gather")
        assert s.application.join.work == 48.0
        assert s.platform.is_homogeneous

    def test_scenarios_are_solvable(self):
        """Every scenario must be solvable by some route of the library."""
        import repro

        for s in SCENARIOS.values():
            spec = repro.ProblemSpec(s.application, s.platform, s.allow_data_parallel)
            entry = repro.classify(spec, repro.Objective.PERIOD)
            if entry.is_polynomial:
                sol = repro.solve(spec, repro.Objective.PERIOD)
                assert sol.period > 0
