"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    AssignmentKind,
    ForkApplication,
    ForkJoinApplication,
    ForkJoinMapping,
    ForkMapping,
    GroupAssignment,
    PipelineApplication,
    PipelineMapping,
    Platform,
)

# The Section 2 worked example: four stages, works (14, 4, 2, 4).
SECTION2_WORKS = [14.0, 4.0, 2.0, 4.0]


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20070301)


@pytest.fixture
def section2_app() -> PipelineApplication:
    return PipelineApplication.from_works(SECTION2_WORKS)


@pytest.fixture
def hom3() -> Platform:
    """Three identical unit-speed processors (Section 2, first platform)."""
    return Platform.homogeneous(3, 1.0)


@pytest.fixture
def het4() -> Platform:
    """Speeds (2, 2, 1, 1) (Section 2, second platform)."""
    return Platform.heterogeneous([2.0, 2.0, 1.0, 1.0])


def pipeline_mapping(app, platform, parts, kinds=None):
    """Build a PipelineMapping from ``[(stages, procs), ...]`` shorthand."""
    kinds = kinds or [AssignmentKind.REPLICATED] * len(parts)
    groups = tuple(
        GroupAssignment(stages=tuple(stages), processors=tuple(procs), kind=kind)
        for (stages, procs), kind in zip(parts, kinds)
    )
    return PipelineMapping(application=app, platform=platform, groups=groups)


def fork_mapping(app, platform, parts, kinds=None):
    kinds = kinds or [AssignmentKind.REPLICATED] * len(parts)
    cls = ForkJoinMapping if isinstance(app, ForkJoinApplication) else ForkMapping
    groups = tuple(
        GroupAssignment(stages=tuple(stages), processors=tuple(procs), kind=kind)
        for (stages, procs), kind in zip(parts, kinds)
    )
    return cls(application=app, platform=platform, groups=groups)
